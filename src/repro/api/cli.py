"""``repro-run``: execute a JSON :class:`~repro.api.spec.RunSpec` from the shell.

Usage::

    repro-run trial.json                # run the spec in trial.json
    repro-run -                         # read the spec from stdin
    repro-run trial.json --print-spec   # echo the normalised spec and exit
    repro-run trial.json --seeds 0 1 2 3 --jobs 4   # multi-seed, pooled
    repro-run trial.json --sampler cluster --batch-size 1024  # minibatch epochs
    repro-run trial.json --warm-start ./store       # cache/reuse pretraining
    repro-run trial.json --save-to model.snap       # persist the trained model
    repro-run --from-checkpoint model.snap          # evaluate it, no training
    repro-run trial.json --seeds 0 1 2 3 --jobs 4 --warm-start ./store \
        --max-retries 2 --trial-timeout 600 --resume   # fault-tolerant sweep
    repro-run store-gc ./store --max-bytes 500000000   # evict LRU artifacts

Multi-seed runs: pass ``--seeds``, or give the spec a JSON list as its
``"seed"`` field (``"seed": [0, 1, 2, 3]``).  ``--jobs N`` fans the seeds
out over ``N`` worker processes (``--jobs auto`` uses every core); the
per-seed results are bitwise identical to a serial ``--jobs 1`` run, only
the wall-clock time changes.

Checkpointing (:mod:`repro.store`): ``--warm-start [DIR]`` serves the
pretraining phase from an artifact store (and populates it on misses) —
re-running a sweep against a warm store skips every pretraining while the
metrics stay bitwise identical.  ``--save-to`` snapshots the trained model
(weights, clustering state, RNG, producing spec) to one file;
``--from-checkpoint`` rebuilds that model and re-evaluates it on its
dataset without any training.

Fault tolerance (:mod:`repro.resilience`): multi-seed sweeps run under a
supervised pool — worker crashes and hung trials are retried with
deterministic backoff (``--max-retries`` / ``REPRO_MAX_RETRIES``), each
attempt bounded by ``--trial-timeout`` / ``REPRO_TRIAL_TIMEOUT``.  A seed
that exhausts its budget is quarantined and the sweep completes with the
other seeds (``--fail-fast`` aborts instead); ``--failure-report`` writes
the machine-readable post-mortem.  With a warm store configured, finished
seeds are journaled as they complete and ``--resume`` replays them after an
interruption, bitwise identical to an uninterrupted run.

The exit status is 0 on success, 1 when any trial failed permanently, and
2 on a malformed spec, so the command composes with shell pipelines and CI
jobs.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.errors import ReproError, SpecError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-run",
        description="Run one (model, dataset, seed) trial described by a JSON RunSpec.",
    )
    parser.add_argument(
        "spec",
        nargs="?",
        default=None,
        help="path to a JSON run spec, or '-' to read the spec from stdin "
        "(not needed with --from-checkpoint)",
    )
    parser.add_argument(
        "--print-spec",
        action="store_true",
        help="print the normalised spec as JSON and exit without training",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the result summary as JSON instead of human-readable text",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        metavar="SEED",
        help="run the spec once per seed (overrides the spec's seed field)",
    )
    parser.add_argument(
        "--jobs",
        default="1",
        metavar="N",
        help="worker processes for multi-seed runs (an int, or 'auto' for "
        "every core); results are identical to --jobs 1",
    )
    store = parser.add_argument_group(
        "checkpointing & warm starts",
        "persist trained models and cache the shared pretraining phase "
        "(repro.store)",
    )
    store.add_argument(
        "--warm-start",
        nargs="?",
        const=True,
        default=None,
        metavar="DIR",
        help="serve/populate pretraining snapshots from an artifact store "
        "(default directory: $REPRO_STORE_DIR or .repro-store)",
    )
    store.add_argument(
        "--save-to",
        default=None,
        metavar="PATH",
        help="save the trained model as a snapshot file (single-seed runs only)",
    )
    store.add_argument(
        "--from-checkpoint",
        default=None,
        metavar="PATH",
        help="skip training: load a snapshot saved with --save-to and "
        "re-evaluate it on its spec's dataset",
    )
    resilience = parser.add_argument_group(
        "fault tolerance",
        "supervised-pool failure handling for multi-seed sweeps "
        "(repro.resilience)",
    )
    resilience.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="retries per seed after the first attempt (default: "
        "$REPRO_MAX_RETRIES or 0)",
    )
    resilience.add_argument(
        "--trial-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-attempt wall-clock budget; over-budget trials are reaped "
        "and retried (default: $REPRO_TRIAL_TIMEOUT; 0 disables; "
        "enforced for --jobs > 1)",
    )
    resilience.add_argument(
        "--fail-fast",
        action="store_true",
        help="abort the sweep on the first permanently failed seed instead "
        "of quarantining it and completing the rest",
    )
    resilience.add_argument(
        "--resume",
        action="store_true",
        help="skip seeds already journaled by a previous interrupted run of "
        "this exact sweep (needs a warm store; results are bitwise "
        "identical to an uninterrupted run)",
    )
    resilience.add_argument(
        "--failure-report",
        default=None,
        metavar="PATH",
        help="write the sweep's JSON failure report (totals, retry policy, "
        "per-seed attempt histories) to PATH",
    )
    observability = parser.add_argument_group(
        "observability",
        "span tracing and metrics across the run (repro.observability)",
    )
    observability.add_argument(
        "--trace",
        nargs="?",
        const=True,
        default=None,
        metavar="PATH",
        help="enable span tracing (REPRO_TRACE=1, propagated to pool "
        "workers) and write the merged Chrome trace — loadable at "
        "https://ui.perfetto.dev — to PATH (default: repro-trace.json); "
        "inspect it with 'repro-run trace-summary PATH'",
    )
    minibatch = parser.add_argument_group(
        "minibatch training",
        "stream subgraph blocks instead of full-graph epochs (rethink "
        "trials only); overlays the spec's rethink overrides",
    )
    minibatch.add_argument(
        "--sampler",
        choices=("full", "neighbor", "cluster"),
        default=None,
        help="minibatch loader: 'cluster' (partition batches), 'neighbor' "
        "(fanout sampling) or 'full' (single batch, equals the legacy loop)",
    )
    minibatch.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="B",
        help="nodes per batch (seeds for --sampler neighbor, target part "
        "size for --sampler cluster)",
    )
    minibatch.add_argument(
        "--fanout",
        type=int,
        default=None,
        metavar="F",
        help="neighbours sampled per node and hop (--sampler neighbor)",
    )
    minibatch.add_argument(
        "--num-hops",
        type=int,
        default=None,
        metavar="H",
        help="neighbourhood expansion rounds (--sampler neighbor)",
    )
    return parser


def _apply_minibatch_flags(pipeline, spec, args):
    """Overlay --sampler / --batch-size / --fanout / --num-hops on the spec."""
    overrides = {}
    if args.sampler is not None:
        overrides["sampler"] = args.sampler
    for name, value in (
        ("batch_size", args.batch_size),
        ("fanout", args.fanout),
        ("num_hops", args.num_hops),
    ):
        if value is not None:
            overrides[name] = value
    if not overrides:
        return pipeline, spec
    has_sampler = args.sampler is not None or "sampler" in spec.rethink.overrides
    if spec.variant != "rethink" or not has_sampler:
        raise SpecError(
            "--batch-size/--fanout/--num-hops/--sampler configure minibatch "
            "training, which needs a rethink trial with a sampler (pass "
            '--sampler or put "sampler" in the spec\'s rethink overrides)'
        )
    pipeline = pipeline.rethink(**overrides)
    return pipeline, pipeline.spec()


def _parse_jobs(value: str):
    if value == "auto":
        return "auto"
    try:
        jobs = int(value)
    except ValueError:
        raise SpecError(f"--jobs must be an integer or 'auto', got {value!r}") from None
    if jobs < 1:
        raise SpecError(f"--jobs must be >= 1, got {jobs}")
    return jobs


def _load_spec_document(text: str):
    """Parse the JSON document, extracting a ``"seed": [...]`` list if any."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise SpecError(f"invalid JSON run spec: {error}") from None
    if not isinstance(data, dict):
        raise SpecError(f"run spec must be a JSON object, got {type(data).__name__}")
    seeds: Optional[List[int]] = None
    if isinstance(data.get("seed"), list):
        seed_list = data["seed"]
        if not seed_list:
            raise SpecError("the spec's seed list must not be empty")
        try:
            seeds = [int(seed) for seed in seed_list]
        except (TypeError, ValueError):
            raise SpecError(
                f"the spec's seed list must contain integers, got {seed_list!r}"
            ) from None
        data = dict(data)
        data["seed"] = seeds[0]
    return data, seeds


def _resolve_warm_start(value):
    """Map the --warm-start flag to a store root (None = flag absent)."""
    if value is None:
        return None
    if value is True:
        from repro.env import env_str
        from repro.store import DEFAULT_STORE_DIR, STORE_DIR_ENV

        return env_str(STORE_DIR_ENV, DEFAULT_STORE_DIR)
    return str(value)


def _run_store_gc(argv: Sequence[str]) -> int:
    """``repro-run store-gc [DIR] [--max-bytes N]``: evict LRU artifacts."""
    parser = argparse.ArgumentParser(
        prog="repro-run store-gc",
        description="Evict least-recently-used artifacts until the store "
        "fits its byte budget (quarantined files are kept).",
    )
    parser.add_argument(
        "store",
        nargs="?",
        default=None,
        help="store root (default: $REPRO_STORE_DIR or .repro-store)",
    )
    parser.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="byte budget to shrink to (default: $REPRO_STORE_MAX_BYTES; "
        "0 or unset only reports the store size)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the gc stats as JSON"
    )
    args = parser.parse_args(argv)
    from repro.store import ArtifactStore

    store = ArtifactStore(args.store)
    try:
        stats = store.gc(max_bytes=args.max_bytes)
    except ReproError as error:
        print(f"repro-run: {error}", file=sys.stderr)
        return 2
    stats["store"] = store.root
    stats["quarantined"] = len(store.quarantined())
    if args.json:
        print(json.dumps(stats, indent=2))
    else:
        print(
            f"store-gc {store.root}: {stats['scanned_bytes']} bytes scanned, "
            f"{stats['evicted']} artifact(s) evicted "
            f"({stats['freed_bytes']} bytes freed), "
            f"{stats['remaining_bytes']} bytes remain "
            f"(budget: {stats['max_bytes'] or 'none'}, "
            f"quarantined: {stats['quarantined']})"
        )
    return 0


def _run_trace_summary(argv: Sequence[str]) -> int:
    """``repro-run trace-summary PATH``: per-span breakdown of a trace file."""
    parser = argparse.ArgumentParser(
        prog="repro-run trace-summary",
        description="Summarise a Chrome trace written by 'repro-run --trace' "
        "(or repro.observability.write_chrome_trace): calls, wall/CPU time "
        "and peak allocations per span name, sorted by wall time.",
    )
    parser.add_argument("trace", help="path to a .trace.json file")
    parser.add_argument(
        "--json", action="store_true", help="emit the summary rows as JSON"
    )
    args = parser.parse_args(argv)
    from repro.observability.exporters import (
        format_trace_summary,
        load_trace_events,
        summarize_trace,
    )

    try:
        rows = summarize_trace(load_trace_events(args.trace))
    except (OSError, ValueError, KeyError) as error:
        print(f"repro-run: cannot summarise {args.trace}: {error}", file=sys.stderr)
        return 2
    try:
        if args.json:
            print(json.dumps(rows, indent=2))
        else:
            print(format_trace_summary(rows))
    except BrokenPipeError:
        # the reader (e.g. ``| head`` or ``| grep -q``) closed the pipe
        # after seeing what it needed; point stdout at devnull so the
        # interpreter's shutdown flush doesn't re-raise
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def _run_from_checkpoint(args) -> int:
    """--from-checkpoint: rebuild a saved model and re-evaluate it."""
    from repro.api.pipeline import Pipeline
    from repro.metrics.report import evaluate_clustering
    from repro.parallel import load_dataset_cached

    result = Pipeline.load(args.from_checkpoint)
    spec = result.spec
    print(
        f"repro-run: {spec.describe()} from checkpoint {args.from_checkpoint} "
        f"(phase {result.extra.get('phase')}, epoch {result.extra.get('epoch')})",
        file=sys.stderr,
    )
    graph = load_dataset_cached(
        spec.dataset.name, seed=spec.dataset.seed, options=spec.dataset.options
    )
    embeddings = result.model.embed(graph)
    report = None
    if graph.labels is not None and result.model.cluster_centers_ is not None:
        assignments = result.model.predict_assignments(embeddings)
        import numpy as np

        report = evaluate_clustering(graph.labels, np.argmax(assignments, axis=1))
        result.report = report
    if args.json:
        payload = {"seed": spec.seed, **result.summary()}
        payload["loaded_from"] = args.from_checkpoint
        print(json.dumps(payload, indent=2))
    else:
        described = spec.describe()
        if report is not None:
            print(f"{described}: {report}")
        else:
            print(f"{described}: no clustering state in checkpoint (embeddings only)")
    return 0


def _print_pretrain_cache(result) -> None:
    stats = result.extra.get("pretrain_cache") or {}
    if stats.get("enabled"):
        outcome = "hit" if stats.get("hit") else "miss"
        print(f"pretrain cache: {outcome} ({stats.get('store')})")


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.api.pipeline import Pipeline

    raw_argv = list(sys.argv[1:] if argv is None else argv)
    if raw_argv[:1] == ["store-gc"]:
        return _run_store_gc(raw_argv[1:])
    if raw_argv[:1] == ["trace-summary"]:
        return _run_trace_summary(raw_argv[1:])
    args = build_parser().parse_args(raw_argv)
    if args.from_checkpoint is not None:
        if args.spec is not None or args.seeds is not None or args.save_to:
            print(
                "repro-run: --from-checkpoint replaces training; it cannot be "
                "combined with a spec, --seeds or --save-to",
                file=sys.stderr,
            )
            return 2
        try:
            return _run_from_checkpoint(args)
        except (OSError, ReproError) as error:
            print(f"repro-run: {error}", file=sys.stderr)
            return 2
    if args.spec is None:
        print(
            "repro-run: a spec path is required (or --from-checkpoint)",
            file=sys.stderr,
        )
        return 2
    try:
        jobs = _parse_jobs(args.jobs)
        if args.spec == "-":
            text = sys.stdin.read()
        else:
            with open(args.spec, "r", encoding="utf-8") as handle:
                text = handle.read()
        data, spec_seeds = _load_spec_document(text)
        pipeline = Pipeline.from_spec(data)
        spec = pipeline.spec()
        pipeline, spec = _apply_minibatch_flags(pipeline, spec, args)
    except (OSError, ReproError) as error:
        print(f"repro-run: {error}", file=sys.stderr)
        return 2

    # --seeds wins over a seed list in the spec; a plain spec runs its own seed.
    seeds = args.seeds if args.seeds is not None else spec_seeds
    multi_seed = seeds is not None
    if not multi_seed and jobs != 1:
        print(
            "repro-run: --jobs requires a multi-seed run (pass --seeds or "
            'give the spec a "seed" list)',
            file=sys.stderr,
        )
        return 2
    if args.save_to and multi_seed:
        print(
            "repro-run: --save-to needs a single-seed run (pooled trials "
            "drop their models)",
            file=sys.stderr,
        )
        return 2
    if args.resume and not multi_seed:
        print(
            "repro-run: --resume resumes a multi-seed sweep (pass --seeds "
            'or give the spec a "seed" list)',
            file=sys.stderr,
        )
        return 2
    store_root = _resolve_warm_start(args.warm_start)
    if args.resume and store_root is None:
        from repro.env import env_str
        from repro.store import STORE_DIR_ENV

        if not env_str(STORE_DIR_ENV):
            print(
                "repro-run: --resume replays the sweep journal from an "
                "artifact store; pass --warm-start [DIR] or set "
                "REPRO_STORE_DIR",
                file=sys.stderr,
            )
            return 2

    if args.print_spec:
        print(spec.to_json())
        return 0

    outcome = None
    try:
        from repro.resilience import RetryPolicy
        from repro.store import store_env

        policy = None
        if args.max_retries is not None or args.trial_timeout is not None:
            if args.max_retries is not None and args.max_retries < 0:
                raise SpecError(
                    f"--max-retries must be >= 0, got {args.max_retries}"
                )
            policy = RetryPolicy.from_env(
                max_attempts=None
                if args.max_retries is None
                else 1 + args.max_retries,
                timeout=args.trial_timeout,
            )
        from contextlib import nullcontext

        from repro.env import TRACE_ENV, env_override

        trace_path = None
        if args.trace is not None:
            trace_path = "repro-trace.json" if args.trace is True else str(args.trace)
        telemetry_doc = None
        # Exporting REPRO_TRACE before the pool spins up is what makes the
        # workers trace themselves; their span forests come back inside the
        # trial results and are merged below.
        trace_ctx = (
            env_override(TRACE_ENV, "1") if trace_path is not None else nullcontext()
        )
        with trace_ctx, store_env(store_root):
            if seeds is None:
                from repro.observability.collect import (
                    merge_sweep_telemetry,
                    trial_telemetry,
                )

                print(f"repro-run: {spec.describe()}", file=sys.stderr)
                with trial_telemetry() as telemetry:
                    results = [pipeline.run()]
                seeds = [spec.seed]
                if telemetry is not None:
                    from repro.store.keys import run_key

                    telemetry_doc = merge_sweep_telemetry(
                        [(run_key(spec.to_dict()), 0, telemetry.export())]
                    )
            else:
                print(
                    f"repro-run: {spec.describe()} over seeds {seeds} "
                    f"(jobs={jobs})",
                    file=sys.stderr,
                )
                outcome = pipeline.run_sweep(
                    seeds,
                    jobs=jobs,
                    resume=args.resume,
                    policy=policy,
                    fail_fast=args.fail_fast,
                )
                results = outcome.results
                telemetry_doc = outcome.telemetry
                if outcome.resumed:
                    print(
                        f"repro-run: resumed {outcome.resumed}/{len(seeds)} "
                        f"seed(s) from the sweep journal",
                        file=sys.stderr,
                    )
        if trace_path is not None and telemetry_doc is not None:
            from repro.observability.exporters import write_chrome_trace

            try:
                write_chrome_trace(trace_path, telemetry_doc)
            except OSError as error:
                print(
                    f"repro-run: cannot write trace to {trace_path}: {error}",
                    file=sys.stderr,
                )
                return 2
            print(f"repro-run: wrote Chrome trace to {trace_path}", file=sys.stderr)
        if args.save_to:
            saved = Pipeline.save(results[0], args.save_to)
            print(f"repro-run: saved snapshot to {saved}", file=sys.stderr)
    except ReproError as error:
        # Unknown dataset / model / callback names only surface when the
        # registries are consulted at run time; report them like any other
        # bad-spec error instead of a traceback.  TrialFailedError (the
        # --fail-fast abort) means the sweep itself broke, not the spec.
        from repro.errors import TrialFailedError

        print(f"repro-run: {error}", file=sys.stderr)
        return 1 if isinstance(error, TrialFailedError) else 2

    if args.failure_report and outcome is not None:
        with open(args.failure_report, "w", encoding="utf-8") as handle:
            json.dump(outcome.report(), handle, indent=2)
        print(
            f"repro-run: wrote failure report to {args.failure_report}",
            file=sys.stderr,
        )

    from repro.resilience import TrialFailure

    failed = sum(isinstance(result, TrialFailure) for result in results)
    if args.json:
        summaries = []
        for seed, result in zip(seeds, results):
            if isinstance(result, TrialFailure):
                summaries.append(
                    {"seed": seed, "failed": True, **result.to_dict()}
                )
                continue
            summary = {"seed": seed, **result.summary()}
            cache = result.extra.get("pretrain_cache")
            if cache is not None and cache.get("enabled"):
                summary["pretrain_cache"] = cache
            summaries.append(summary)
        # Multi-seed mode always emits an array (even for one seed) so
        # consumers parse one shape; a plain run keeps the historical object.
        print(json.dumps(summaries if multi_seed else summaries[0], indent=2))
    else:
        for seed, result in zip(seeds, results):
            described = spec.replace(seed=seed).describe()
            if isinstance(result, TrialFailure):
                print(
                    f"{described}: FAILED after {len(result.attempts)} "
                    f"attempt(s) — {result.error}"
                )
                continue
            print(f"{described}: {result.report}")
            print(f"runtime: {result.runtime_seconds:.2f}s")
            if result.history is not None:
                print(
                    f"epochs run: {result.history.epochs_run} "
                    f"(converged: {result.history.converged})"
                )
            _print_pretrain_cache(result)
    if failed:
        print(
            f"repro-run: {failed}/{len(results)} trial(s) failed permanently",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
