"""``repro-run``: execute a JSON :class:`~repro.api.spec.RunSpec` from the shell.

Usage::

    repro-run trial.json            # run the spec in trial.json
    repro-run -                     # read the spec from stdin
    repro-run trial.json --print-spec   # echo the normalised spec and exit

The exit status is 0 on success and 2 on a malformed spec, so the command
composes with shell pipelines and CI jobs.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.errors import ReproError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-run",
        description="Run one (model, dataset, seed) trial described by a JSON RunSpec.",
    )
    parser.add_argument(
        "spec",
        help="path to a JSON run spec, or '-' to read the spec from stdin",
    )
    parser.add_argument(
        "--print-spec",
        action="store_true",
        help="print the normalised spec as JSON and exit without training",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the result summary as JSON instead of human-readable text",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.api.pipeline import Pipeline

    args = build_parser().parse_args(argv)
    try:
        if args.spec == "-":
            text = sys.stdin.read()
        else:
            with open(args.spec, "r", encoding="utf-8") as handle:
                text = handle.read()
        pipeline = Pipeline.from_spec(text)
        spec = pipeline.spec()
    except (OSError, ReproError) as error:
        print(f"repro-run: {error}", file=sys.stderr)
        return 2

    if args.print_spec:
        print(spec.to_json())
        return 0

    print(f"repro-run: {spec.describe()}", file=sys.stderr)
    try:
        result = pipeline.run()
    except ReproError as error:
        # Unknown dataset / model / callback names only surface when the
        # registries are consulted at run time; report them like any other
        # bad-spec error instead of a traceback.
        print(f"repro-run: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result.summary(), indent=2))
    else:
        print(f"{spec.describe()}: {result.report}")
        print(f"runtime: {result.runtime_seconds:.2f}s")
        if result.history is not None:
            print(
                f"epochs run: {result.history.epochs_run} "
                f"(converged: {result.history.converged})"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
