"""Callback/event system for the R- training loop.

The R- procedure (Eq. 6) is a plain optimisation loop punctuated by four
kinds of events: the sampling operator Ξ refreshing the decidable set Ω,
the operator Υ rebuilding the self-supervision graph, periodic evaluation,
and the end of each epoch.  Everything the paper *observes about* training
— the Λ_FR / Λ_FD traces (Tables 6-7), the learning-dynamics curves
(Figures 4-6, 9), graph snapshots, verbosity, early stopping — is a
listener on those events, not part of the loop itself.

This module makes that explicit: :class:`RethinkCallback` defines the event
interface, concrete callbacks implement each tracking concern, and
:data:`CALLBACKS` registers them by name so a serialised
:class:`~repro.api.spec.RunSpec` can request them declaratively
(``{"name": "fr_fd"}``).  :func:`callbacks_from_config` maps the legacy
``track_*`` booleans of :class:`~repro.core.rethink.RethinkConfig` onto
callbacks, which is how the old configuration surface keeps working.
"""

from __future__ import annotations

import tracemalloc
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.api.registry import Registry
from repro.errors import SpecError
from repro.observability.log import get_logger
from repro.observability.tracer import trace_event


class EvaluationContext:
    """Lazy view of the trainer state handed to ``on_evaluate``.

    Embeddings are only computed when a callback actually reads
    ``context.embeddings``, so an evaluation event costs nothing when no
    tracking callback is attached.
    """

    def __init__(self, trainer, graph, epoch: int) -> None:
        self.trainer = trainer
        self.graph = graph
        self.epoch = int(epoch)
        self._embeddings: Optional[np.ndarray] = None

    @property
    def embeddings(self) -> np.ndarray:
        """Current (deterministic) embeddings, computed once per event."""
        if self._embeddings is None:
            self._embeddings = self.trainer.model.embed(self.graph)
        return self._embeddings

    @property
    def sampling(self):
        return self.trainer.last_sampling_

    @property
    def history(self):
        return self.trainer.history_

    @property
    def self_supervision_graph(self) -> np.ndarray:
        return self.trainer.self_supervision_graph_


class RethinkCallback:
    """Base class: override any subset of the event hooks.

    The trainer is attached before ``on_train_begin`` fires, so hooks can
    reach ``self.trainer.model``, ``self.trainer.config``,
    ``self.trainer.history_``, ``self.trainer.last_sampling_`` and
    ``self.trainer.self_supervision_graph_``.
    """

    trainer = None

    def set_trainer(self, trainer) -> None:
        self.trainer = trainer

    # -- lifecycle -----------------------------------------------------
    def on_train_begin(self, graph, history) -> None:
        """Fired once, after pretraining and clustering initialisation."""

    def on_train_end(self, history) -> None:
        """Fired once, after the final epoch (or early stop)."""

    # -- per-epoch -----------------------------------------------------
    def on_epoch_begin(self, epoch: int) -> None:
        """Fired before the optimisation step of each epoch."""

    def on_epoch_end(self, epoch: int, logs: Dict[str, float]) -> None:
        """Fired after the optimisation step; ``logs`` carries the scalar
        diagnostics of the epoch (loss, coverage, |Ω|)."""

    # -- operator events -----------------------------------------------
    def on_omega_update(self, epoch: int, sampling) -> None:
        """Fired whenever Ξ recomputes the decidable set Ω."""

    def on_graph_transform(self, epoch: int, graph_matrix: np.ndarray) -> None:
        """Fired whenever Υ rebuilds the self-supervision graph."""

    # -- evaluation ----------------------------------------------------
    def on_evaluate(self, epoch: int, context: EvaluationContext) -> None:
        """Fired every ``config.evaluate_every`` epochs and on the last one."""


class CallbackList(RethinkCallback):
    """Composite dispatching every event to its children, in order."""

    def __init__(self, callbacks: Optional[Sequence[RethinkCallback]] = None) -> None:
        self.callbacks: List[RethinkCallback] = list(callbacks or [])

    def append(self, callback: RethinkCallback) -> None:
        self.callbacks.append(callback)

    def set_trainer(self, trainer) -> None:
        self.trainer = trainer
        for callback in self.callbacks:
            callback.set_trainer(trainer)

    def on_train_begin(self, graph, history) -> None:
        for callback in self.callbacks:
            callback.on_train_begin(graph, history)

    def on_train_end(self, history) -> None:
        for callback in self.callbacks:
            callback.on_train_end(history)

    def on_epoch_begin(self, epoch: int) -> None:
        for callback in self.callbacks:
            callback.on_epoch_begin(epoch)

    def on_epoch_end(self, epoch: int, logs: Dict[str, float]) -> None:
        for callback in self.callbacks:
            callback.on_epoch_end(epoch, logs)

    def on_omega_update(self, epoch: int, sampling) -> None:
        for callback in self.callbacks:
            callback.on_omega_update(epoch, sampling)

    def on_graph_transform(self, epoch: int, graph_matrix: np.ndarray) -> None:
        for callback in self.callbacks:
            callback.on_graph_transform(epoch, graph_matrix)

    def on_evaluate(self, epoch: int, context: EvaluationContext) -> None:
        for callback in self.callbacks:
            callback.on_evaluate(epoch, context)


#: registry of callbacks addressable from a serialised RunSpec.
CALLBACKS = Registry("callback")


@CALLBACKS.register("fr_fd", description="Λ_FR / Λ_FD traces (Figures 5-6)")
class FRFDTracker(RethinkCallback):
    """Record the Feature-Randomness / Feature-Drift metrics at evaluation.

    Appends to ``history.fr_rethought`` / ``fr_baseline`` (Eq. 4) and
    ``history.fd_rethought`` / ``fd_baseline`` (Eq. 7), comparing the
    operator-driven run against the no-operator baseline from the same
    state.
    """

    def __init__(self, track_fr: bool = True, track_fd: bool = True) -> None:
        self.track_fr = bool(track_fr)
        self.track_fd = bool(track_fd)

    def on_evaluate(self, epoch: int, context: EvaluationContext) -> None:
        from repro.core.fr_fd import feature_drift_metric, feature_randomness_metric
        from repro.core.graph_transform import build_clustering_oriented_graph
        from repro.core.supervision import aligned_oracle_assignments

        graph = context.graph
        if graph.labels is None:
            return
        trainer = self.trainer
        model = trainer.model
        history = context.history
        embeddings = context.embeddings
        features, adj_norm = trainer.features_, trainer.adj_norm_
        assignments = model.predict_assignments(embeddings)
        oracle = aligned_oracle_assignments(graph.labels, assignments)
        if self.track_fr and hasattr(model, "clustering_loss_with_target"):
            reliable = context.sampling.reliable_nodes
            history.fr_rethought.append(
                feature_randomness_metric(model, features, adj_norm, oracle, reliable)
            )
            history.fr_baseline.append(
                feature_randomness_metric(model, features, adj_norm, oracle, None)
            )
        if self.track_fd:
            oracle_graph = build_clustering_oriented_graph(
                graph.adjacency, oracle, np.arange(graph.num_nodes), embeddings
            )
            history.fd_rethought.append(
                feature_drift_metric(
                    model, features, adj_norm, context.self_supervision_graph, oracle_graph
                )
            )
            history.fd_baseline.append(
                feature_drift_metric(model, features, adj_norm, graph.adjacency, oracle_graph)
            )


@CALLBACKS.register("dynamics", description="accuracy-per-group and link dynamics (Figures 4, 9)")
class DynamicsTracker(RethinkCallback):
    """Record per-group accuracies and link bookkeeping at evaluation.

    Fills ``history.accuracy_all`` / ``accuracy_decidable`` /
    ``accuracy_undecidable`` (Figure 9) and ``history.link_stats``
    (Figure 4's edge bookkeeping of the operator-built graph).
    """

    def on_evaluate(self, epoch: int, context: EvaluationContext) -> None:
        from repro.graph.ops import edge_difference
        from repro.metrics.hungarian import align_labels
        from repro.metrics.report import evaluate_clustering

        graph = context.graph
        if graph.labels is None:
            return
        history = context.history
        assignments = self.trainer.model.predict_assignments(context.embeddings)
        predictions = np.argmax(assignments, axis=1)
        history.evaluation_epochs.append(epoch)
        history.accuracy_all.append(evaluate_clustering(graph.labels, predictions).accuracy)
        correct = align_labels(graph.labels, predictions) == np.asarray(graph.labels)
        mask = context.sampling.mask()
        history.accuracy_decidable.append(
            float(np.mean(correct[mask])) if mask.any() else 0.0
        )
        history.accuracy_undecidable.append(
            float(np.mean(correct[~mask])) if (~mask).any() else 0.0
        )
        history.link_stats.append(
            edge_difference(graph.adjacency, context.self_supervision_graph, graph.labels)
        )


@CALLBACKS.register("graph_snapshots", description="periodic copies of the Υ-built graph")
class GraphSnapshotRecorder(RethinkCallback):
    """Store a copy of the self-supervision graph every ``every`` epochs."""

    def __init__(self, every: int = 20) -> None:
        if int(every) < 1:
            raise ValueError("snapshot interval must be >= 1")
        self.every = int(every)

    def on_epoch_end(self, epoch: int, logs: Dict[str, float]) -> None:
        if epoch % self.every == 0:
            history = self.trainer.history_
            history.graph_snapshots[epoch] = self.trainer.self_supervision_graph_.copy()


@CALLBACKS.register("progress", description="periodic stdout progress line")
class ProgressLogger(RethinkCallback):
    """Print a one-line progress report every ``every`` epochs."""

    def __init__(self, every: int = 20) -> None:
        self.every = max(1, int(every))

    def on_epoch_end(self, epoch: int, logs: Dict[str, float]) -> None:
        if epoch % self.every == 0:
            model_name = self.trainer.model.__class__.__name__
            get_logger("progress").info(
                "[R-%s] epoch %d loss %.4f |Omega| %d",
                model_name,
                epoch,
                logs["loss"],
                int(logs["num_reliable"]),
            )


@CALLBACKS.register(
    "telemetry", description="structured per-epoch telemetry (losses, coverage, memory peaks)"
)
class TrainingTelemetry(RethinkCallback):
    """Fold the loop's scalar diagnostics into one structured record stream.

    Each epoch contributes a flat record — every ``logs`` scalar (loss,
    coverage, |Ω|) plus the peak Python allocation since the previous epoch
    when ``track_memory`` is on (tracemalloc is started on demand and
    stopped again if this callback started it).  At train end the records
    and any FR/FD series other callbacks recorded are folded into
    ``history.telemetry``, and each epoch is also emitted as a
    ``telemetry.epoch`` trace event so traced runs see the same numbers on
    the Chrome timeline.  Nothing here consumes RNG: traced/telemetered
    runs stay bitwise identical to bare ones.
    """

    _FR_FD_SERIES = ("fr_rethought", "fr_baseline", "fd_rethought", "fd_baseline")

    def __init__(self, track_memory: bool = True) -> None:
        self.track_memory = bool(track_memory)
        self.records: List[Dict[str, float]] = []
        self._started_tracemalloc = False

    def on_train_begin(self, graph, history) -> None:
        self.records = []
        if self.track_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True

    def on_epoch_end(self, epoch: int, logs: Dict[str, float]) -> None:
        record: Dict[str, float] = {"epoch": float(epoch)}
        for key in sorted(logs):
            record[key] = float(logs[key])
        if self.track_memory and tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.reset_peak()
            record["peak_alloc_bytes"] = float(peak)
        self.records.append(record)
        trace_event("telemetry.epoch", **record)

    def on_train_end(self, history) -> None:
        summary: Dict[str, Any] = {"epochs": list(self.records)}
        for name in self._FR_FD_SERIES:
            series = getattr(history, name, None)
            if series:
                summary[name] = [float(value) for value in series]
        history.telemetry = summary
        if self._started_tracemalloc:
            tracemalloc.stop()
            self._started_tracemalloc = False


@CALLBACKS.register("convergence_stopping", description="stop when |Ω| ≥ fraction · N")
class ConvergenceStopping(RethinkCallback):
    """Early stopping on the paper's convergence criterion (|Ω| ≥ 0.9 N).

    The criterion is only armed once Ξ has refreshed Ω at least once
    (``epoch >= update_omega_every``) so the initial, possibly permissive
    sampling cannot stop training immediately.
    """

    def __init__(self, fraction: Optional[float] = None) -> None:
        self.fraction = fraction

    def on_epoch_end(self, epoch: int, logs: Dict[str, float]) -> None:
        config = self.trainer.config
        fraction = config.convergence_fraction if self.fraction is None else self.fraction
        if logs["coverage"] >= fraction and epoch >= config.update_omega_every:
            self.trainer.history_.converged = True
            self.trainer.stop_training = True


class LambdaCallback(RethinkCallback):
    """Ad-hoc callback built from keyword functions.

    >>> LambdaCallback(on_epoch_end=lambda epoch, logs: print(epoch))
    """

    _HOOKS = (
        "on_train_begin",
        "on_train_end",
        "on_epoch_begin",
        "on_epoch_end",
        "on_omega_update",
        "on_graph_transform",
        "on_evaluate",
    )

    def __init__(self, **hooks) -> None:
        unknown = set(hooks) - set(self._HOOKS)
        if unknown:
            raise ValueError(f"unknown callback hooks: {sorted(unknown)}")
        for hook_name in self._HOOKS:
            function = hooks.get(hook_name)
            if function is not None:
                setattr(self, hook_name, function)


CallbackSpec = Union[str, Dict[str, Any], RethinkCallback]


def resolve_callbacks(specs: Sequence[CallbackSpec]) -> List[RethinkCallback]:
    """Turn declarative callback specs into callback instances.

    Accepts ready-made :class:`RethinkCallback` objects, registered names
    (``"fr_fd"``) or dicts with constructor arguments
    (``{"name": "graph_snapshots", "every": 10}``).
    """
    resolved: List[RethinkCallback] = []
    for spec in specs:
        if isinstance(spec, RethinkCallback):
            resolved.append(spec)
        elif isinstance(spec, str):
            resolved.append(CALLBACKS.build(spec))
        elif isinstance(spec, dict):
            kwargs = dict(spec)
            try:
                name = kwargs.pop("name")
            except KeyError:
                raise SpecError(f"callback spec {spec!r} is missing a 'name' key") from None
            resolved.append(CALLBACKS.build(name, **kwargs))
        else:
            raise SpecError(f"cannot resolve callback spec {spec!r}")
    return resolved


def callbacks_from_config(config) -> List[RethinkCallback]:
    """Map the legacy ``RethinkConfig`` tracking switches onto callbacks.

    This preserves the behaviour (and the event ordering) of the original
    monolithic training loop: dynamics before FR/FD at evaluation time,
    snapshots and verbosity after, convergence checked last.
    """
    callbacks: List[RethinkCallback] = []
    if config.track_dynamics:
        callbacks.append(DynamicsTracker())
    if config.track_fr or config.track_fd:
        callbacks.append(FRFDTracker(track_fr=config.track_fr, track_fd=config.track_fd))
    if config.snapshot_graph_every is not None:
        callbacks.append(GraphSnapshotRecorder(every=config.snapshot_graph_every))
    if config.verbose:
        callbacks.append(ProgressLogger(every=20))
    if config.stop_at_convergence:
        callbacks.append(ConvergenceStopping())
    return callbacks
