"""The `Pipeline` facade: one fluent, declarative entry point for trials.

The paper's central claim is architectural: *any* GAE model D becomes R-D
by composing the operators Ξ and Υ around its training loop.  The
:class:`Pipeline` makes that composition a first-class object::

    from repro.api import Pipeline

    result = (
        Pipeline()
        .dataset("cora_sim")
        .model("gmm_vgae")
        .rethink(alpha1=0.7)
        .seed(0)
        .run()
    )
    print(result.report)

and, because the underlying :class:`~repro.api.spec.RunSpec` round-trips
through JSON, the exact same trial is also a document::

    result = Pipeline.from_spec(json.load(open("trial.json"))).run()

Pipelines are immutable: every fluent call returns a new pipeline, so a
partially-configured pipeline can be reused as a template for many trials.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.api.spec import (
    DatasetSpec,
    ModelSpec,
    RethinkSpec,
    RunSpec,
    TrainingSpec,
)
from repro.errors import SpecError, UnknownVariantError


@dataclass
class RunResult:
    """Outcome of one :meth:`Pipeline.run` call.

    ``history`` is populated for rethink trials only (base trials have no
    R- phase); ``model`` is the trained model, kept so callers can embed,
    predict or snapshot weights afterwards.
    """

    spec: RunSpec
    report: Optional[Any]  # ClusteringReport when the dataset has labels
    runtime_seconds: float
    history: Optional[Any] = None  # RethinkHistory for rethink trials
    model: Optional[Any] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def variant(self) -> str:
        return self.spec.variant

    def summary(self) -> Dict[str, float]:
        """Flat metric summary (ACC/NMI/ARI plus runtime)."""
        out: Dict[str, float] = {"runtime_seconds": self.runtime_seconds}
        if self.report is not None:
            out.update(self.report.as_dict())
        if self.history is not None:
            out["epochs_run"] = float(self.history.epochs_run)
            out["converged"] = float(self.history.converged)
        return out


class Pipeline:
    """Fluent, immutable builder and executor of training trials."""

    def __init__(self) -> None:
        self._dataset: Optional[DatasetSpec] = None
        self._model: Optional[ModelSpec] = None
        self._variant: str = "rethink"
        self._seed: int = 0
        self._training: TrainingSpec = TrainingSpec()
        self._rethink: RethinkSpec = RethinkSpec()
        self._callback_specs: List[Union[str, Dict[str, Any]]] = []
        self._callback_objects: List[Any] = []
        self._tags: Dict[str, str] = {}
        self._graph = None  # explicit AttributedGraph, bypasses the registry
        self._pretrained_state: Optional[Dict[str, Any]] = None

    def _clone(self) -> "Pipeline":
        clone = copy.copy(self)
        clone._callback_specs = list(self._callback_specs)
        clone._callback_objects = list(self._callback_objects)
        clone._tags = dict(self._tags)
        return clone

    # ------------------------------------------------------------------
    # fluent configuration
    # ------------------------------------------------------------------
    def dataset(self, name: str, seed: int = 0, **options) -> "Pipeline":
        """Select a registered dataset (and its generation seed)."""
        clone = self._clone()
        clone._dataset = DatasetSpec(name=name, seed=seed, options=options)
        return clone

    def graph(self, graph) -> "Pipeline":
        """Use an explicit :class:`~repro.graph.graph.AttributedGraph`.

        Escape hatch for corrupted / user-built graphs (robustness sweeps).
        The resulting pipeline still runs, but it can only be serialised if
        a named dataset is also set.
        """
        clone = self._clone()
        clone._graph = graph
        if clone._dataset is None:
            clone._dataset = DatasetSpec(name=getattr(graph, "name", "custom"))
        return clone

    def model(self, name: str, **options) -> "Pipeline":
        """Select a registered model; ``options`` go to its constructor."""
        clone = self._clone()
        clone._model = ModelSpec(name=name, options=options)
        return clone

    def base(self) -> "Pipeline":
        """Run the original model D (no Ξ / Υ operators)."""
        clone = self._clone()
        clone._variant = "base"
        return clone

    def rethink(self, use_paper_hyperparameters: Optional[bool] = None, **overrides) -> "Pipeline":
        """Run the R- variant; ``overrides`` overlay any RethinkConfig field."""
        clone = self._clone()
        clone._variant = "rethink"
        merged = {**clone._rethink.overrides, **overrides}
        use_paper = (
            clone._rethink.use_paper_hyperparameters
            if use_paper_hyperparameters is None
            else use_paper_hyperparameters
        )
        clone._rethink = RethinkSpec(overrides=merged, use_paper_hyperparameters=use_paper)
        return clone

    def minibatch(
        self,
        sampler: str = "cluster",
        batch_size: Optional[int] = None,
        fanout: Optional[int] = None,
        num_hops: Optional[int] = None,
        sampler_seed: Optional[int] = None,
    ) -> "Pipeline":
        """Run the R- phase with a :mod:`repro.minibatch` loader.

        Convenience over :meth:`rethink`: ``sampler`` is "full", "neighbor"
        or "cluster"; the remaining arguments overlay the corresponding
        :class:`~repro.core.rethink.RethinkConfig` fields when given.
        """
        overrides: Dict[str, Any] = {"sampler": sampler}
        if batch_size is not None:
            overrides["batch_size"] = batch_size
        if fanout is not None:
            overrides["fanout"] = fanout
        if num_hops is not None:
            overrides["num_hops"] = num_hops
        if sampler_seed is not None:
            overrides["sampler_seed"] = sampler_seed
        return self.rethink(**overrides)

    def variant(self, variant: str) -> "Pipeline":
        """Select "base" or "rethink" by name (spec-style)."""
        if variant not in ("base", "rethink"):
            raise UnknownVariantError(variant)
        clone = self._clone()
        clone._variant = variant
        return clone

    def seed(self, seed: int) -> "Pipeline":
        """Seed for model initialisation and training stochasticity."""
        clone = self._clone()
        clone._seed = int(seed)
        return clone

    def training(self, **budgets) -> "Pipeline":
        """Set epoch budgets (pretrain_epochs, clustering_epochs, rethink_epochs)."""
        clone = self._clone()
        merged = clone._training.to_dict()
        merged.update(budgets)
        clone._training = TrainingSpec.from_dict(merged)
        return clone

    def callbacks(self, *callbacks) -> "Pipeline":
        """Attach callbacks: registered names, spec dicts or instances."""
        clone = self._clone()
        for callback in callbacks:
            if isinstance(callback, (str, dict)):
                clone._callback_specs.append(callback)
            else:
                clone._callback_objects.append(callback)
        return clone

    def tag(self, **tags) -> "Pipeline":
        """Attach free-form string tags carried through to the spec."""
        clone = self._clone()
        clone._tags.update({key: str(value) for key, value in tags.items()})
        return clone

    def pretrained_state(self, state: Dict[str, Any]) -> "Pipeline":
        """Start from a pretraining snapshot instead of pretraining afresh.

        This is how the paper's fairness protocol ("D and R-D share the
        same pretraining weights") is expressed with pipelines: pretrain
        once, then hand the same state to a base and a rethink pipeline.
        """
        clone = self._clone()
        clone._pretrained_state = state
        return clone

    # ------------------------------------------------------------------
    # spec round-trip
    # ------------------------------------------------------------------
    def spec(self) -> RunSpec:
        """The serializable :class:`RunSpec` this pipeline will execute."""
        if self._dataset is None:
            raise SpecError("pipeline has no dataset; call .dataset(name) first")
        if self._model is None:
            raise SpecError("pipeline has no model; call .model(name) first")
        return RunSpec(
            dataset=self._dataset,
            model=self._model,
            variant=self._variant,
            seed=self._seed,
            training=self._training,
            rethink=self._rethink,
            callbacks=list(self._callback_specs),
            tags=dict(self._tags),
        )

    @classmethod
    def from_spec(cls, spec: Union[RunSpec, Dict[str, Any], str]) -> "Pipeline":
        """Build a pipeline from a :class:`RunSpec`, plain dict or JSON text."""
        if isinstance(spec, str):
            spec = RunSpec.from_json(spec)
        elif isinstance(spec, dict):
            spec = RunSpec.from_dict(spec)
        elif not isinstance(spec, RunSpec):
            raise SpecError(f"cannot build a pipeline from {type(spec).__name__}")
        pipeline = cls()
        pipeline._dataset = spec.dataset
        pipeline._model = spec.model
        pipeline._variant = spec.variant
        pipeline._seed = spec.seed
        pipeline._training = spec.training
        pipeline._rethink = spec.rethink
        pipeline._callback_specs = list(spec.callbacks)
        pipeline._tags = dict(spec.tags)
        return pipeline

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _resolve_graph(self, spec: RunSpec):
        from repro.parallel import load_dataset_cached

        if self._graph is not None:
            return self._graph
        # Per-process LRU: repeated trials on the same dataset spec (multi-seed
        # sweeps, pool workers) build the graph once.  Cached graphs are
        # shared, so the whole stack treats AttributedGraph as immutable.
        return load_dataset_cached(
            spec.dataset.name, spec.dataset.seed, spec.dataset.options
        )

    def run(self) -> RunResult:
        """Execute the trial end-to-end and return its :class:`RunResult`."""
        from repro.api.callbacks import resolve_callbacks
        from repro.core.rethink import RethinkConfig, RethinkTrainer
        from repro.experiments.config import rethink_hyperparameters
        from repro.graph.sparse import sparse_threshold_overrides
        from repro.metrics.report import evaluate_clustering
        from repro.models.registry import MODELS, build_model
        from repro.parallel import dataset_cache_info

        spec = self.spec()
        start = time.perf_counter()
        graph = self._resolve_graph(spec)
        model = build_model(
            spec.model.name,
            graph.num_features,
            graph.num_clusters,
            seed=spec.seed,
            **spec.model.options,
        )
        config = None
        if spec.variant == "rethink":
            settings: Dict[str, Any] = {}
            if spec.rethink.use_paper_hyperparameters:
                settings.update(rethink_hyperparameters(spec.dataset.name, spec.model.name))
            settings.update(
                epochs=spec.training.rethink_epochs,
                pretrain_epochs=spec.training.pretrain_epochs,
            )
            settings.update(spec.rethink.overrides)
            config = RethinkConfig(**settings)

        # Apply any configured sparse-backend thresholds to the whole trial
        # (pretraining included — the trainer re-applies them inside fit for
        # callers that drive RethinkTrainer directly).
        with sparse_threshold_overrides(
            config.sparse_node_threshold if config is not None else None,
            config.sparse_density_threshold if config is not None else None,
        ):
            if self._pretrained_state is not None:
                model.load_state_dict(self._pretrained_state)
            else:
                model.pretrain(
                    graph,
                    epochs=spec.training.pretrain_epochs,
                    verbose=config.verbose if config is not None else False,
                )

            history = None
            if spec.variant == "base":
                if MODELS.metadata(spec.model.name).get("group") == "second":
                    model.fit_clustering(graph, epochs=spec.training.clustering_epochs)
            else:
                callbacks = resolve_callbacks(spec.callbacks) + list(self._callback_objects)
                trainer = RethinkTrainer(model, config, callbacks=callbacks)
                history = trainer.fit(graph, pretrained=True)

            report = None
            if graph.labels is not None:
                if history is not None and history.final_report is not None:
                    report = history.final_report
                else:
                    report = evaluate_clustering(graph.labels, model.predict_labels(graph))
        runtime = time.perf_counter() - start
        return RunResult(
            spec=spec,
            report=report,
            runtime_seconds=runtime,
            history=history,
            model=model,
            extra={"dataset_cache": dataset_cache_info()},
        )

    def run_trials(self, seeds, jobs=None) -> List[RunResult]:
        """Run this pipeline once per seed, optionally over a process pool.

        The per-seed results are bitwise identical whatever ``jobs`` is
        (``None``/1 serial, an int, or ``"auto"`` for the cpu count): each
        trial re-derives all randomness from its spec inside its worker.
        Unlike :meth:`run`, the trained models are not returned — they hold
        autograd closures that cannot cross process boundaries.

        Requires a registry dataset and declarative callbacks: an explicit
        :meth:`graph` or live callback objects cannot be shipped to worker
        processes.
        """
        from repro.parallel import run_seeded

        if self._graph is not None:
            raise SpecError(
                "run_trials requires a registered dataset; pipelines built "
                "with .graph(...) cannot be re-materialised in pool workers"
            )
        if self._callback_objects:
            raise SpecError(
                "run_trials requires declarative callbacks (names or spec "
                "dicts); live callback objects cannot be shipped to workers"
            )
        if self._pretrained_state is not None:
            raise SpecError(
                "run_trials re-runs pretraining per seed; pretrained_state "
                "snapshots are not supported"
            )
        return run_seeded(self.spec(), seeds, jobs=jobs)
