"""The `Pipeline` facade: one fluent, declarative entry point for trials.

The paper's central claim is architectural: *any* GAE model D becomes R-D
by composing the operators Ξ and Υ around its training loop.  The
:class:`Pipeline` makes that composition a first-class object::

    from repro.api import Pipeline

    result = (
        Pipeline()
        .dataset("cora_sim")
        .model("gmm_vgae")
        .rethink(alpha1=0.7)
        .seed(0)
        .run()
    )
    print(result.report)

and, because the underlying :class:`~repro.api.spec.RunSpec` round-trips
through JSON, the exact same trial is also a document::

    result = Pipeline.from_spec(json.load(open("trial.json"))).run()

Pipelines are immutable: every fluent call returns a new pipeline, so a
partially-configured pipeline can be reused as a template for many trials.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.api.spec import (
    DatasetSpec,
    ModelSpec,
    RethinkSpec,
    RunSpec,
    TrainingSpec,
)
from repro.errors import SpecError, UnknownVariantError


@dataclass
class RunResult:
    """Outcome of one :meth:`Pipeline.run` call.

    ``history`` is populated for rethink trials only (base trials have no
    R- phase); ``model`` is the trained model, kept so callers can embed,
    predict or snapshot weights afterwards.
    """

    spec: RunSpec
    report: Optional[Any]  # ClusteringReport when the dataset has labels
    runtime_seconds: float
    history: Optional[Any] = None  # RethinkHistory for rethink trials
    model: Optional[Any] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def variant(self) -> str:
        return self.spec.variant

    def save(self, path: str) -> str:
        """Persist the trained model as a :class:`repro.store.Snapshot` file.

        The snapshot carries the producing spec and a metric summary, so
        :meth:`Pipeline.load` can rebuild and serve the model without
        touching the training path.  Only results from :meth:`Pipeline.run`
        can be saved — pooled ``run_trials`` results drop their models.
        """
        from repro.errors import StoreError
        from repro.store import Snapshot

        if self.model is None:
            raise StoreError(
                "this RunResult holds no model (pooled run_trials results "
                "drop them); run the trial with Pipeline.run() to save it"
            )
        epoch = self.history.epochs_run if self.history is not None else 0
        snapshot = Snapshot.capture(
            self.model,
            spec=self.spec.to_dict(),
            epoch=epoch,
            phase="trained",
            metadata={"summary": self.summary(), "store_key": self.spec.store_key()},
        )
        return snapshot.save(path)

    def summary(self) -> Dict[str, float]:
        """Flat metric summary (ACC/NMI/ARI plus runtime)."""
        out: Dict[str, float] = {"runtime_seconds": self.runtime_seconds}
        if self.report is not None:
            out.update(self.report.as_dict())
        if self.history is not None:
            out["epochs_run"] = float(self.history.epochs_run)
            out["converged"] = float(self.history.converged)
        return out


class Pipeline:
    """Fluent, immutable builder and executor of training trials."""

    def __init__(self) -> None:
        self._dataset: Optional[DatasetSpec] = None
        self._model: Optional[ModelSpec] = None
        self._variant: str = "rethink"
        self._seed: int = 0
        self._training: TrainingSpec = TrainingSpec()
        self._rethink: RethinkSpec = RethinkSpec()
        self._callback_specs: List[Union[str, Dict[str, Any]]] = []
        self._callback_objects: List[Any] = []
        self._tags: Dict[str, str] = {}
        self._graph = None  # explicit AttributedGraph, bypasses the registry
        #: a raw state dict, repro.store.Snapshot, or artifact-store key.
        self._pretrained_state: Optional[Any] = None
        #: warm-start setting: None = follow REPRO_STORE_DIR, False = off,
        #: True = default store, str = store root, ArtifactStore = use as-is.
        self._warm_start: Optional[Any] = None

    def _clone(self) -> "Pipeline":
        clone = copy.copy(self)
        clone._callback_specs = list(self._callback_specs)
        clone._callback_objects = list(self._callback_objects)
        clone._tags = dict(self._tags)
        return clone

    # ------------------------------------------------------------------
    # fluent configuration
    # ------------------------------------------------------------------
    def dataset(self, name: str, seed: int = 0, **options) -> "Pipeline":
        """Select a registered dataset (and its generation seed)."""
        clone = self._clone()
        clone._dataset = DatasetSpec(name=name, seed=seed, options=options)
        return clone

    def graph(self, graph) -> "Pipeline":
        """Use an explicit :class:`~repro.graph.graph.AttributedGraph`.

        Escape hatch for corrupted / user-built graphs (robustness sweeps).
        The resulting pipeline still runs, but it can only be serialised if
        a named dataset is also set.
        """
        clone = self._clone()
        clone._graph = graph
        if clone._dataset is None:
            clone._dataset = DatasetSpec(name=getattr(graph, "name", "custom"))
        return clone

    def model(self, name: str, **options) -> "Pipeline":
        """Select a registered model; ``options`` go to its constructor."""
        clone = self._clone()
        clone._model = ModelSpec(name=name, options=options)
        return clone

    def base(self) -> "Pipeline":
        """Run the original model D (no Ξ / Υ operators)."""
        clone = self._clone()
        clone._variant = "base"
        return clone

    def rethink(self, use_paper_hyperparameters: Optional[bool] = None, **overrides) -> "Pipeline":
        """Run the R- variant; ``overrides`` overlay any RethinkConfig field."""
        clone = self._clone()
        clone._variant = "rethink"
        merged = {**clone._rethink.overrides, **overrides}
        use_paper = (
            clone._rethink.use_paper_hyperparameters
            if use_paper_hyperparameters is None
            else use_paper_hyperparameters
        )
        clone._rethink = RethinkSpec(overrides=merged, use_paper_hyperparameters=use_paper)
        return clone

    def minibatch(
        self,
        sampler: str = "cluster",
        batch_size: Optional[int] = None,
        fanout: Optional[int] = None,
        num_hops: Optional[int] = None,
        sampler_seed: Optional[int] = None,
    ) -> "Pipeline":
        """Run the R- phase with a :mod:`repro.minibatch` loader.

        Convenience over :meth:`rethink`: ``sampler`` is "full", "neighbor"
        or "cluster"; the remaining arguments overlay the corresponding
        :class:`~repro.core.rethink.RethinkConfig` fields when given.
        """
        overrides: Dict[str, Any] = {"sampler": sampler}
        if batch_size is not None:
            overrides["batch_size"] = batch_size
        if fanout is not None:
            overrides["fanout"] = fanout
        if num_hops is not None:
            overrides["num_hops"] = num_hops
        if sampler_seed is not None:
            overrides["sampler_seed"] = sampler_seed
        return self.rethink(**overrides)

    def variant(self, variant: str) -> "Pipeline":
        """Select "base" or "rethink" by name (spec-style)."""
        if variant not in ("base", "rethink"):
            raise UnknownVariantError(variant)
        clone = self._clone()
        clone._variant = variant
        return clone

    def seed(self, seed: int) -> "Pipeline":
        """Seed for model initialisation and training stochasticity."""
        clone = self._clone()
        clone._seed = int(seed)
        return clone

    def training(self, **budgets) -> "Pipeline":
        """Set epoch budgets (pretrain_epochs, clustering_epochs, rethink_epochs)."""
        clone = self._clone()
        merged = clone._training.to_dict()
        merged.update(budgets)
        clone._training = TrainingSpec.from_dict(merged)
        return clone

    def callbacks(self, *callbacks) -> "Pipeline":
        """Attach callbacks: registered names, spec dicts or instances."""
        clone = self._clone()
        for callback in callbacks:
            if isinstance(callback, (str, dict)):
                clone._callback_specs.append(callback)
            else:
                clone._callback_objects.append(callback)
        return clone

    def tag(self, **tags) -> "Pipeline":
        """Attach free-form string tags carried through to the spec."""
        clone = self._clone()
        clone._tags.update({key: str(value) for key, value in tags.items()})
        return clone

    def pretrained_state(self, state: Any) -> "Pipeline":
        """Start from a pretraining snapshot instead of pretraining afresh.

        This is how the paper's fairness protocol ("D and R-D share the
        same pretraining weights") is expressed with pipelines: pretrain
        once, then hand the same state to a base and a rethink pipeline.

        Accepts a raw ``state_dict`` mapping, a
        :class:`repro.store.Snapshot`, or an artifact-store key string
        (resolved against the pipeline's store — see :meth:`warm_start` /
        ``REPRO_STORE_DIR``).  Whatever the form, the state is validated
        against the pipeline's model as soon as :meth:`run` builds it, so a
        mismatched checkpoint fails before any training happens.  Snapshots
        restore weights and clustering extras but keep the model's freshly
        seeded RNG, exactly like the raw-dict handoff.
        """
        clone = self._clone()
        clone._pretrained_state = state
        return clone

    def warm_start(self, store: Any = True) -> "Pipeline":
        """Serve (and populate) pretraining from an artifact store.

        ``store`` is ``True`` for the default store (``REPRO_STORE_DIR`` or
        ``.repro-store``), a directory path, an
        :class:`repro.store.ArtifactStore` instance, or ``False`` to force
        cold pretraining even when ``REPRO_STORE_DIR`` is set.  On a warm
        store the run skips pretraining entirely and restores the exact
        post-pretraining state (RNG included), so its metrics are bitwise
        identical to a cold run's; cache statistics land in
        ``RunResult.extra['pretrain_cache']``.
        """
        clone = self._clone()
        clone._warm_start = store
        return clone

    # ------------------------------------------------------------------
    # spec round-trip
    # ------------------------------------------------------------------
    def spec(self) -> RunSpec:
        """The serializable :class:`RunSpec` this pipeline will execute."""
        if self._dataset is None:
            raise SpecError("pipeline has no dataset; call .dataset(name) first")
        if self._model is None:
            raise SpecError("pipeline has no model; call .model(name) first")
        return RunSpec(
            dataset=self._dataset,
            model=self._model,
            variant=self._variant,
            seed=self._seed,
            training=self._training,
            rethink=self._rethink,
            callbacks=list(self._callback_specs),
            tags=dict(self._tags),
        )

    @classmethod
    def from_spec(cls, spec: Union[RunSpec, Dict[str, Any], str]) -> "Pipeline":
        """Build a pipeline from a :class:`RunSpec`, plain dict or JSON text."""
        if isinstance(spec, str):
            spec = RunSpec.from_json(spec)
        elif isinstance(spec, dict):
            spec = RunSpec.from_dict(spec)
        elif not isinstance(spec, RunSpec):
            raise SpecError(f"cannot build a pipeline from {type(spec).__name__}")
        pipeline = cls()
        pipeline._dataset = spec.dataset
        pipeline._model = spec.model
        pipeline._variant = spec.variant
        pipeline._seed = spec.seed
        pipeline._training = spec.training
        pipeline._rethink = spec.rethink
        pipeline._callback_specs = list(spec.callbacks)
        pipeline._tags = dict(spec.tags)
        return pipeline

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _resolve_graph(self, spec: RunSpec):
        from repro.parallel import load_dataset_cached

        if self._graph is not None:
            return self._graph
        # Per-process LRU: repeated trials on the same dataset spec (multi-seed
        # sweeps, pool workers) build the graph once.  Cached graphs are
        # shared, so the whole stack treats AttributedGraph as immutable.
        return load_dataset_cached(
            spec.dataset.name, spec.dataset.seed, spec.dataset.options
        )

    # ------------------------------------------------------------------
    # artifact-store helpers
    # ------------------------------------------------------------------
    def _resolve_store(self):
        """The ArtifactStore this pipeline should use, or ``None`` (cold)."""
        from repro.store import ArtifactStore, active_store

        setting = self._warm_start
        if setting is None:
            return active_store()
        if setting is False:
            return None
        if setting is True:
            return ArtifactStore()
        if isinstance(setting, ArtifactStore):
            return setting
        return ArtifactStore(str(setting))

    def _apply_pretrained_state(self, model) -> Optional[Dict[str, Any]]:
        """Validate and load ``pretrained_state`` before training starts.

        Returns cache stats when the state came through the store machinery
        (key / Snapshot), ``None`` for the legacy raw-dict handoff.
        """
        from repro.errors import StoreError
        from repro.store import Snapshot

        state = self._pretrained_state
        source = "pretrained_state"
        key = None
        if isinstance(state, str):
            store = self._resolve_store()
            if store is None:
                raise StoreError(
                    f"pretrained_state was given store key {state[:16]!r}… but "
                    "no artifact store is configured; set REPRO_STORE_DIR or "
                    "call .warm_start(<dir>)"
                )
            key = state
            state = store.get(state)  # raises ArtifactNotFoundError on a miss
        if isinstance(state, Snapshot):
            # Fail fast: class/shape validation happens here, before any
            # epoch runs.  restore_rng=False keeps the fairness protocol's
            # freshly seeded generator (matching the raw-dict handoff).
            state.apply(model, restore_rng=False)
            return {"enabled": True, "hit": True, "key": key, "source": source}
        # Raw dict: load_state_dict rejects missing/unexpected/misshaped
        # parameters, which is the same fail-fast point.
        model.load_state_dict(state)
        return None

    def run(self) -> RunResult:
        """Execute the trial end-to-end and return its :class:`RunResult`."""
        from repro.observability import span

        spec = self.spec()
        with span(
            "pipeline.run",
            model=spec.model.name,
            dataset=spec.dataset.name,
            variant=spec.variant,
            seed=spec.seed,
        ):
            return self._run(spec)

    def _run(self, spec: RunSpec) -> RunResult:
        from repro.api.callbacks import resolve_callbacks
        from repro.core.rethink import RethinkConfig, RethinkTrainer
        from repro.experiments.config import rethink_hyperparameters
        from repro.graph.sparse import sparse_threshold_overrides
        from repro.metrics.report import evaluate_clustering
        from repro.models.registry import MODELS, build_model
        from repro.observability import span
        from repro.parallel import dataset_cache_info

        start = time.perf_counter()
        with span("pipeline.dataset", dataset=spec.dataset.name):
            graph = self._resolve_graph(spec)
        with span("pipeline.build_model", model=spec.model.name):
            model = build_model(
                spec.model.name,
                graph.num_features,
                graph.num_clusters,
                seed=spec.seed,
                **spec.model.options,
            )
        config = None
        if spec.variant == "rethink":
            settings: Dict[str, Any] = {}
            if spec.rethink.use_paper_hyperparameters:
                settings.update(rethink_hyperparameters(spec.dataset.name, spec.model.name))
            settings.update(
                epochs=spec.training.rethink_epochs,
                pretrain_epochs=spec.training.pretrain_epochs,
            )
            settings.update(spec.rethink.overrides)
            config = RethinkConfig(**settings)

        # Apply any configured sparse-backend thresholds to the whole trial
        # (pretraining included — the trainer re-applies them inside fit for
        # callers that drive RethinkTrainer directly).
        with sparse_threshold_overrides(
            config.sparse_node_threshold if config is not None else None,
            config.sparse_density_threshold if config is not None else None,
        ):
            from repro.store import disabled_stats, warm_pretrain

            if self._pretrained_state is not None:
                with span("pipeline.pretrained_state"):
                    pretrain_stats = self._apply_pretrained_state(model) or disabled_stats()
            else:
                # Keyed like load_dataset_cached: registry trials by their
                # dataset spec, explicit graphs by content fingerprint.  The
                # sparse thresholds join the key because they change the
                # pretraining numerics; the variant deliberately does not,
                # so a D / R-D pair shares one snapshot.
                with span("pipeline.pretrain", epochs=spec.training.pretrain_epochs):
                    pretrain_stats = warm_pretrain(
                        model,
                        graph,
                        spec.training.pretrain_epochs,
                        store=self._resolve_store(),
                        dataset=None if self._graph is not None else spec.dataset.to_dict(),
                        config={
                            "sparse": [
                                config.sparse_node_threshold if config is not None else None,
                                config.sparse_density_threshold if config is not None else None,
                            ]
                        },
                        spec=spec.to_dict(),
                        verbose=config.verbose if config is not None else False,
                    )

            history = None
            if spec.variant == "base":
                if MODELS.metadata(spec.model.name).get("group") == "second":
                    with span("pipeline.fit_clustering"):
                        model.fit_clustering(graph, epochs=spec.training.clustering_epochs)
            else:
                callbacks = resolve_callbacks(spec.callbacks) + list(self._callback_objects)
                trainer = RethinkTrainer(model, config, callbacks=callbacks)
                with span("pipeline.fit"):
                    history = trainer.fit(graph, pretrained=True)

            report = None
            if graph.labels is not None:
                if history is not None and history.final_report is not None:
                    report = history.final_report
                else:
                    with span("pipeline.evaluate"):
                        report = evaluate_clustering(graph.labels, model.predict_labels(graph))
        runtime = time.perf_counter() - start
        return RunResult(
            spec=spec,
            report=report,
            runtime_seconds=runtime,
            history=history,
            model=model,
            extra={
                "dataset_cache": dataset_cache_info(),
                "pretrain_cache": pretrain_stats,
            },
        )

    def run_sweep(self, seeds, jobs=None, resume=False, policy=None, fail_fast=False):
        """Like :meth:`run_trials`, returning the full sweep outcome.

        The :class:`~repro.resilience.SweepOutcome` carries the ordered
        per-seed results, the quarantined
        :class:`~repro.resilience.TrialFailure` entries, the number of
        journal-resumed trials, and a JSON failure report
        (:meth:`~repro.resilience.SweepOutcome.report`) — what
        ``repro-run --failure-report`` serialises.
        """
        from repro.parallel import _normalise_spec, run_sweep

        if self._graph is not None:
            raise SpecError(
                "run_trials requires a registered dataset; pipelines built "
                "with .graph(...) cannot be re-materialised in pool workers"
            )
        if self._callback_objects:
            raise SpecError(
                "run_trials requires declarative callbacks (names or spec "
                "dicts); live callback objects cannot be shipped to workers"
            )
        if self._pretrained_state is not None:
            raise SpecError(
                "run_trials re-runs pretraining per seed; pretrained_state "
                "snapshots are not supported (use .warm_start() to share "
                "pretraining through the artifact store instead)"
            )
        base = _normalise_spec(self.spec())
        expanded = []
        for seed in seeds:
            spec_dict = copy.deepcopy(base)
            spec_dict["seed"] = int(seed)
            expanded.append(spec_dict)
        store = self._resolve_store()
        return run_sweep(
            expanded, jobs=jobs,
            store_dir=None if store is None else store.root,
            resume=resume, policy=policy, fail_fast=fail_fast,
        )

    def run_trials(
        self, seeds, jobs=None, resume=False, policy=None, fail_fast=False
    ) -> List[RunResult]:
        """Run this pipeline once per seed, optionally over a process pool.

        The per-seed results are bitwise identical whatever ``jobs`` is
        (``None``/1 serial, an int, or ``"auto"`` for the cpu count): each
        trial re-derives all randomness from its spec inside its worker.
        Unlike :meth:`run`, the trained models are not returned — they hold
        autograd closures that cannot cross process boundaries.

        A :meth:`warm_start` store propagates to the workers (via
        ``REPRO_STORE_DIR``), so repeated sweeps skip re-pretraining: the
        first run per seed populates the store, every later run hits it.

        Execution is supervised (see :func:`repro.parallel.run_sweep`):
        crashes and hangs retry under ``REPRO_MAX_RETRIES`` /
        ``REPRO_TRIAL_TIMEOUT`` (or an explicit
        :class:`~repro.resilience.RetryPolicy`), a trial that exhausts its
        budget leaves a :class:`~repro.resilience.TrialFailure` in its
        result slot (``fail_fast=True`` raises instead), and with a store
        configured ``resume=True`` skips seeds a previous interrupted sweep
        already finished — bitwise identical to an uninterrupted run.

        Requires a registry dataset and declarative callbacks: an explicit
        :meth:`graph` or live callback objects cannot be shipped to worker
        processes.
        """
        return self.run_sweep(
            seeds, jobs=jobs, resume=resume, policy=policy, fail_fast=fail_fast
        ).results

    # ------------------------------------------------------------------
    # artifact round-trip
    # ------------------------------------------------------------------
    @staticmethod
    def save(result: RunResult, path: str) -> str:
        """Persist a trained :class:`RunResult` as a snapshot file.

        Equivalent to ``result.save(path)``; see :meth:`RunResult.save`.
        """
        return result.save(path)

    @classmethod
    def load(cls, path: str) -> RunResult:
        """Rebuild a trained model from a snapshot file, without training.

        The snapshot's embedded spec and model configuration are enough to
        reconstruct the model — the dataset is *not* loaded, which is what
        lets a serving layer answer embed/predict requests from frozen
        artifacts.  The returned :class:`RunResult` carries the restored
        model and the original spec; ``report`` is ``None`` until the
        caller evaluates on a graph.
        """
        from repro.errors import StoreError
        from repro.models.registry import build_model
        from repro.store import Snapshot

        snapshot = Snapshot.load(path)
        if snapshot.spec is None:
            raise StoreError(
                f"snapshot {path!r} carries no RunSpec; only artifacts saved "
                "through Pipeline.save / RunResult.save can be loaded here"
            )
        spec = RunSpec.from_dict(snapshot.spec)
        num_features = snapshot.config.get("num_features")
        num_clusters = snapshot.config.get("num_clusters")
        if num_features is None or num_clusters is None:
            raise StoreError(
                f"snapshot {path!r} does not record the model dimensions "
                "(num_features / num_clusters)"
            )
        model = build_model(
            spec.model.name,
            int(num_features),
            int(num_clusters),
            seed=spec.seed,
            **spec.model.options,
        )
        snapshot.apply(model, restore_rng=True)
        return RunResult(
            spec=spec,
            report=None,
            runtime_seconds=0.0,
            history=None,
            model=model,
            extra={
                "loaded_from": path,
                "phase": snapshot.phase,
                "epoch": snapshot.epoch,
                "summary": snapshot.metadata.get("summary"),
            },
        )
