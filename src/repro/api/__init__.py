"""repro.api — the unified pipeline facade of the reproduction.

Three pieces compose here:

* :class:`~repro.api.registry.Registry` — the single registry protocol
  behind the model / dataset / baseline / callback registries, with
  decorator registration and queryable metadata;
* :class:`~repro.api.spec.RunSpec` — serializable run descriptions that
  round-trip through plain dicts and JSON (``repro-run spec.json``);
* :class:`~repro.api.pipeline.Pipeline` — the fluent facade executing a
  spec end-to-end, with training observability supplied by the callback
  system of :mod:`repro.api.callbacks`.

Quick taste::

    from repro.api import Pipeline

    result = Pipeline().dataset("cora_sim").model("gae").rethink(alpha1=0.3).seed(0).run()
    print(result.report)

The low-level registries (:mod:`repro.models.registry`, ...) import
:class:`Registry` from this package, so the heavier modules (pipeline,
spec, callbacks) are loaded lazily via module ``__getattr__`` to keep the
import graph acyclic.
"""

from __future__ import annotations

from repro.api.registry import Registry, RegistryEntry
from repro.errors import (
    ConfigError,
    ReproError,
    SpecError,
    UnknownEntryError,
    UnknownVariantError,
)

_LAZY_EXPORTS = {
    # spec
    "RunSpec": ("repro.api.spec", "RunSpec"),
    "DatasetSpec": ("repro.api.spec", "DatasetSpec"),
    "ModelSpec": ("repro.api.spec", "ModelSpec"),
    "TrainingSpec": ("repro.api.spec", "TrainingSpec"),
    "RethinkSpec": ("repro.api.spec", "RethinkSpec"),
    # pipeline
    "Pipeline": ("repro.api.pipeline", "Pipeline"),
    "RunResult": ("repro.api.pipeline", "RunResult"),
    # callbacks
    "RethinkCallback": ("repro.api.callbacks", "RethinkCallback"),
    "CallbackList": ("repro.api.callbacks", "CallbackList"),
    "EvaluationContext": ("repro.api.callbacks", "EvaluationContext"),
    "LambdaCallback": ("repro.api.callbacks", "LambdaCallback"),
    "FRFDTracker": ("repro.api.callbacks", "FRFDTracker"),
    "DynamicsTracker": ("repro.api.callbacks", "DynamicsTracker"),
    "GraphSnapshotRecorder": ("repro.api.callbacks", "GraphSnapshotRecorder"),
    "ProgressLogger": ("repro.api.callbacks", "ProgressLogger"),
    "ConvergenceStopping": ("repro.api.callbacks", "ConvergenceStopping"),
    "CALLBACKS": ("repro.api.callbacks", "CALLBACKS"),
    "resolve_callbacks": ("repro.api.callbacks", "resolve_callbacks"),
}

__all__ = [
    "Registry",
    "RegistryEntry",
    "ReproError",
    "ConfigError",
    "SpecError",
    "UnknownEntryError",
    "UnknownVariantError",
    *_LAZY_EXPORTS,
]


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value
    return value


def __dir__():
    return sorted(__all__)
