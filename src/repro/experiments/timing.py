"""Runtime comparison between D and R-D (Table 5).

The paper's claim is that the operators Ξ and Υ add no significant runtime
overhead; this module times full training runs of both variants on the same
dataset with shared pretraining budgets.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from repro.core.rethink import RethinkConfig, RethinkTrainer
from repro.experiments.config import ExperimentConfig, rethink_hyperparameters
from repro.graph.graph import AttributedGraph
from repro.models import build_model
from repro.models.registry import model_group


def runtime_comparison(
    model_name: str,
    graph: AttributedGraph,
    config: Optional[ExperimentConfig] = None,
    num_runs: int = 3,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Best / mean / variance of the training time (seconds) of D and R-D.

    The clustering phases of the two variants run the same number of epochs
    so the comparison isolates the operator overhead.
    """
    config = config or ExperimentConfig.fast()
    timings: Dict[str, List[float]] = {"base": [], "rethink": []}
    for run in range(num_runs):
        run_seed = seed + run
        # Base model D.
        start = time.perf_counter()
        base = build_model(model_name, graph.num_features, graph.num_clusters, seed=run_seed)
        base.pretrain(graph, epochs=config.pretrain_epochs)
        if model_group(model_name) == "second":
            base.fit_clustering(graph, epochs=config.clustering_epochs)
        base.predict_labels(graph)
        timings["base"].append(time.perf_counter() - start)

        # R- variant with the same budget for the clustering phase.
        start = time.perf_counter()
        rethought = build_model(model_name, graph.num_features, graph.num_clusters, seed=run_seed)
        rethought.pretrain(graph, epochs=config.pretrain_epochs)
        hyper = rethink_hyperparameters(graph.name, model_name)
        trainer = RethinkTrainer(
            rethought,
            RethinkConfig(
                alpha1=hyper["alpha1"],
                update_omega_every=hyper["update_omega_every"],
                update_graph_every=hyper["update_graph_every"],
                epochs=config.clustering_epochs,
                stop_at_convergence=False,
            ),
        )
        trainer.fit(graph, pretrained=True)
        rethought.predict_labels(graph)
        timings["rethink"].append(time.perf_counter() - start)

    def summarise(values: List[float]) -> Dict[str, float]:
        return {
            "best": float(np.min(values)),
            "mean": float(np.mean(values)),
            "variance": float(np.var(values)),
        }

    return {variant: summarise(values) for variant, values in timings.items()}
