"""Runtime comparison between D and R-D (Table 5).

The paper's claim is that the operators Ξ and Υ add no significant runtime
overhead; this module times full training runs of both variants on the same
dataset, via :class:`repro.api.Pipeline` (whose ``RunResult`` carries the
wall-clock runtime of the whole trial).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.api.pipeline import Pipeline
from repro.experiments.config import ExperimentConfig
from repro.graph.graph import AttributedGraph


def runtime_comparison(
    model_name: str,
    graph: AttributedGraph,
    config: Optional[ExperimentConfig] = None,
    num_runs: int = 3,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Best / mean / variance of the training time (seconds) of D and R-D.

    The clustering phases of the two variants run the same number of epochs
    so the comparison isolates the operator overhead.
    """
    config = config or ExperimentConfig.fast()
    timings: Dict[str, List[float]] = {"base": [], "rethink": []}
    for run in range(num_runs):
        shared = (
            Pipeline()
            .graph(graph)
            .model(model_name)
            .seed(seed + run)
            .training(
                pretrain_epochs=config.pretrain_epochs,
                clustering_epochs=config.clustering_epochs,
                # Same clustering budget for both variants (Table 5 protocol).
                rethink_epochs=config.clustering_epochs,
            )
        )
        timings["base"].append(shared.base().run().runtime_seconds)
        timings["rethink"].append(
            shared.rethink(stop_at_convergence=False).run().runtime_seconds
        )

    def summarise(values: List[float]) -> Dict[str, float]:
        return {
            "best": float(np.min(values)),
            "mean": float(np.mean(values)),
            "variance": float(np.var(values)),
        }

    return {variant: summarise(values) for variant, values in timings.items()}
