"""ASCII table formatting matching the layout of the paper's tables."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(
    rows: Dict[str, Dict[str, Dict[str, float]]],
    datasets: Sequence[str],
    metrics: Sequence[str] = ("acc", "nmi", "ari"),
    title: str = "",
) -> str:
    """Render ``rows[method][dataset][metric]`` (fractions) as a paper-style table.

    Values are printed in percent with one decimal, the layout matching
    Tables 1/3/17: one row per method, ACC/NMI/ARI columns per dataset.
    """
    header_cells = ["Method"]
    for dataset in datasets:
        for metric in metrics:
            header_cells.append(f"{dataset}:{metric.upper()}")
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(f"{cell:>18}" for cell in header_cells))
    lines.append("-" * len(lines[-1]))
    for method, per_dataset in rows.items():
        cells = [method]
        for dataset in datasets:
            metrics_for_dataset = per_dataset.get(dataset, {})
            for metric in metrics:
                value = metrics_for_dataset.get(metric)
                cells.append("--" if value is None else f"{100.0 * value:.1f}")
        lines.append(" | ".join(f"{cell:>18}" for cell in cells))
    return "\n".join(lines)


def format_mean_std_table(
    rows: Dict[str, Dict[str, Dict[str, Dict[str, float]]]],
    datasets: Sequence[str],
    metrics: Sequence[str] = ("acc", "nmi", "ari"),
    title: str = "",
) -> str:
    """Render mean ± std tables (layout of Tables 2 and 4).

    ``rows[method][dataset][metric]`` must be ``{"mean": .., "std": ..}``
    with values as fractions.
    """
    header_cells = ["Method"]
    for dataset in datasets:
        for metric in metrics:
            header_cells.append(f"{dataset}:{metric.upper()}")
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(f"{cell:>20}" for cell in header_cells))
    lines.append("-" * len(lines[-1]))
    for method, per_dataset in rows.items():
        cells = [method]
        for dataset in datasets:
            metrics_for_dataset = per_dataset.get(dataset, {})
            for metric in metrics:
                value = metrics_for_dataset.get(metric)
                if value is None:
                    cells.append("--")
                else:
                    cells.append(
                        f"{100.0 * value['mean']:.1f} ± {100.0 * value['std']:.1f}"
                    )
        lines.append(" | ".join(f"{cell:>20}" for cell in cells))
    return "\n".join(lines)


def format_simple_table(rows: List[Dict[str, object]], columns: Sequence[str], title: str = "") -> str:
    """Render a list of dictionaries as a fixed-width table."""
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(f"{column:>16}" for column in columns))
    lines.append("-" * len(lines[-1]))
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "--")
            if isinstance(value, float):
                cells.append(f"{value:.3f}")
            else:
                cells.append(str(value))
        lines.append(" | ".join(f"{cell:>16}" for cell in cells))
    return "\n".join(lines)
