"""Hyper-parameter sensitivity studies (Figures 11, 12 and 13)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.rethink import RethinkConfig, RethinkTrainer
from repro.experiments.config import ExperimentConfig, rethink_hyperparameters
from repro.graph.graph import AttributedGraph
from repro.metrics.report import evaluate_clustering
from repro.models import build_model
from repro.models.registry import model_group


def threshold_sensitivity_study(
    model_name: str,
    graph: AttributedGraph,
    alpha1_values: Sequence[float] = (0.1, 0.2, 0.3, 0.4),
    alpha2_values: Sequence[float] = (0.05, 0.1, 0.15, 0.2),
    config: Optional[ExperimentConfig] = None,
    seed: int = 0,
) -> List[Dict]:
    """Figures 11-12: grid over the confidence thresholds α1 and α2.

    The same pretraining snapshot is reused across the whole grid so the
    differences are attributable to the thresholds only.
    """
    config = config or ExperimentConfig.fast()
    pretrain_model = build_model(model_name, graph.num_features, graph.num_clusters, seed=seed)
    pretrain_model.pretrain(graph, epochs=config.pretrain_epochs)
    state = pretrain_model.state_dict()
    hyper = rethink_hyperparameters(graph.name, model_name)
    results: List[Dict] = []
    for alpha1 in alpha1_values:
        for alpha2 in alpha2_values:
            model = build_model(model_name, graph.num_features, graph.num_clusters, seed=seed)
            model.load_state_dict(state)
            trainer = RethinkTrainer(
                model,
                RethinkConfig(
                    alpha1=alpha1,
                    alpha2=alpha2,
                    update_omega_every=hyper["update_omega_every"],
                    update_graph_every=hyper["update_graph_every"],
                    epochs=config.rethink_epochs,
                ),
            )
            history = trainer.fit(graph, pretrained=True)
            results.append(
                {
                    "alpha1": alpha1,
                    "alpha2": alpha2,
                    **history.final_report.as_dict(),
                    "final_coverage": history.omega_coverage[-1],
                }
            )
    return results


def gamma_sensitivity_study(
    model_name: str,
    graph: AttributedGraph,
    gamma_values: Sequence[float] = (0.01, 0.1, 0.5, 1.0, 2.0),
    config: Optional[ExperimentConfig] = None,
    seed: int = 0,
) -> List[Dict]:
    """Figure 13: sensitivity of D and R-D to the balancing coefficient γ.

    For each γ both the base model and the R- variant are retrained from the
    same pretraining snapshot; the paper's claim is that the R- variant is
    markedly *less* sensitive to γ.
    """
    config = config or ExperimentConfig.fast()
    pretrain_model = build_model(model_name, graph.num_features, graph.num_clusters, seed=seed)
    pretrain_model.pretrain(graph, epochs=config.pretrain_epochs)
    state = pretrain_model.state_dict()
    hyper = rethink_hyperparameters(graph.name, model_name)
    results: List[Dict] = []
    for gamma in gamma_values:
        base = build_model(
            model_name, graph.num_features, graph.num_clusters, seed=seed, gamma=gamma
        )
        base.load_state_dict(state)
        if model_group(model_name) == "second":
            base.fit_clustering(graph, epochs=config.clustering_epochs)
        base_report = evaluate_clustering(graph.labels, base.predict_labels(graph))

        rethought = build_model(
            model_name, graph.num_features, graph.num_clusters, seed=seed, gamma=gamma
        )
        rethought.load_state_dict(state)
        trainer = RethinkTrainer(
            rethought,
            RethinkConfig(
                alpha1=hyper["alpha1"],
                update_omega_every=hyper["update_omega_every"],
                update_graph_every=hyper["update_graph_every"],
                epochs=config.rethink_epochs,
                gamma=gamma,
            ),
        )
        history = trainer.fit(graph, pretrained=True)
        results.append(
            {
                "gamma": gamma,
                "base": base_report.as_dict(),
                "rethink": history.final_report.as_dict(),
            }
        )
    return results
