"""Hyper-parameter sensitivity studies (Figures 11, 12 and 13).

Each grid point is one :class:`repro.api.Pipeline` run from a shared
pretraining snapshot, with the swept hyper-parameter as an R- override.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.api.pipeline import Pipeline
from repro.experiments.config import ExperimentConfig
from repro.graph.graph import AttributedGraph
from repro.models import build_model


def threshold_sensitivity_study(
    model_name: str,
    graph: AttributedGraph,
    alpha1_values: Sequence[float] = (0.1, 0.2, 0.3, 0.4),
    alpha2_values: Sequence[float] = (0.05, 0.1, 0.15, 0.2),
    config: Optional[ExperimentConfig] = None,
    seed: int = 0,
) -> List[Dict]:
    """Figures 11-12: grid over the confidence thresholds α1 and α2.

    The same pretraining snapshot is reused across the whole grid so the
    differences are attributable to the thresholds only.
    """
    config = config or ExperimentConfig.fast()
    pretrain_model = build_model(model_name, graph.num_features, graph.num_clusters, seed=seed)
    pretrain_model.pretrain(graph, epochs=config.pretrain_epochs)
    state = pretrain_model.state_dict()
    shared = (
        Pipeline()
        .graph(graph)
        .model(model_name)
        .seed(seed)
        .pretrained_state(state)
        .training(rethink_epochs=config.rethink_epochs)
    )
    results: List[Dict] = []
    for alpha1 in alpha1_values:
        for alpha2 in alpha2_values:
            result = shared.rethink(alpha1=alpha1, alpha2=alpha2).run()
            results.append(
                {
                    "alpha1": alpha1,
                    "alpha2": alpha2,
                    **result.report.as_dict(),
                    "final_coverage": result.history.omega_coverage[-1],
                }
            )
    return results


def gamma_sensitivity_study(
    model_name: str,
    graph: AttributedGraph,
    gamma_values: Sequence[float] = (0.01, 0.1, 0.5, 1.0, 2.0),
    config: Optional[ExperimentConfig] = None,
    seed: int = 0,
) -> List[Dict]:
    """Figure 13: sensitivity of D and R-D to the balancing coefficient γ.

    For each γ both the base model and the R- variant are retrained from the
    same pretraining snapshot; the paper's claim is that the R- variant is
    markedly *less* sensitive to γ.
    """
    config = config or ExperimentConfig.fast()
    pretrain_model = build_model(model_name, graph.num_features, graph.num_clusters, seed=seed)
    pretrain_model.pretrain(graph, epochs=config.pretrain_epochs)
    state = pretrain_model.state_dict()
    results: List[Dict] = []
    for gamma in gamma_values:
        shared = (
            Pipeline()
            .graph(graph)
            .model(model_name, gamma=gamma)
            .seed(seed)
            .pretrained_state(state)
            .training(
                clustering_epochs=config.clustering_epochs,
                rethink_epochs=config.rethink_epochs,
            )
        )
        base_result = shared.base().run()
        rethink_result = shared.rethink(gamma=gamma).run()
        results.append(
            {
                "gamma": gamma,
                "base": base_result.report.as_dict(),
                "rethink": rethink_result.report.as_dict(),
            }
        )
    return results
