"""Experiment configuration and per-dataset hyper-parameters (Appendix C).

``ExperimentConfig`` controls the training budget used by the experiment
runner; its defaults are scaled down from the paper's 200+200 epochs so the
full benchmark suite runs in minutes on a laptop while preserving every
qualitative trend.  ``ExperimentConfig.paper()`` restores the paper's
budgets.

``rethink_hyperparameters`` mirrors Appendix C: the (α1, M1, M2) values used
for each R- model on each dataset; the values are adapted to the surrogate
datasets (the α1 selection rule follows the paper — the largest value that
keeps Ω non-empty).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class ExperimentConfig:
    """Training budgets shared across the experiment runners."""

    pretrain_epochs: int = 80
    clustering_epochs: int = 60
    rethink_epochs: int = 100
    num_trials: int = 3
    base_seed: int = 0

    @classmethod
    def fast(cls) -> "ExperimentConfig":
        """A small budget for CI smoke runs and unit/integration tests."""
        return cls(pretrain_epochs=30, clustering_epochs=20, rethink_epochs=30, num_trials=2)

    @classmethod
    def paper(cls) -> "ExperimentConfig":
        """The budgets used by the paper (200 pretraining + 200 clustering epochs)."""
        return cls(pretrain_epochs=200, clustering_epochs=200, rethink_epochs=200, num_trials=3)

    def with_trials(self, num_trials: int) -> "ExperimentConfig":
        return replace(self, num_trials=num_trials)


#: (alpha1, M1, M2) per (dataset, model) — adapted from Appendix C tables 11-16.
_RETHINK_SETTINGS: Dict[str, Dict[str, Tuple[float, int, int]]] = {
    "cora_sim": {
        "gae": (0.5, 20, 10),
        "vgae": (0.5, 20, 10),
        "argae": (0.5, 20, 10),
        "arvgae": (0.5, 20, 10),
        "dgae": (0.3, 20, 15),
        "gmm_vgae": (0.7, 20, 10),
    },
    "citeseer_sim": {
        "gae": (0.5, 20, 10),
        "vgae": (0.5, 20, 10),
        "argae": (0.4, 20, 10),
        "arvgae": (0.4, 20, 10),
        "dgae": (0.3, 20, 10),
        "gmm_vgae": (0.7, 20, 10),
    },
    "pubmed_sim": {
        "gae": (0.5, 20, 10),
        "vgae": (0.5, 20, 10),
        "argae": (0.4, 20, 10),
        "arvgae": (0.4, 20, 10),
        "dgae": (0.3, 20, 10),
        "gmm_vgae": (0.7, 20, 10),
    },
    "usa_air_sim": {
        "dgae": (0.3, 20, 10),
        "gmm_vgae": (0.6, 20, 10),
    },
    "europe_air_sim": {
        "dgae": (0.25, 20, 10),
        "gmm_vgae": (0.6, 20, 10),
    },
    "brazil_air_sim": {
        "dgae": (0.3, 20, 10),
        "gmm_vgae": (0.6, 20, 10),
    },
}

_DEFAULT_SETTING: Tuple[float, int, int] = (0.4, 20, 10)


def rethink_hyperparameters(dataset: str, model: str) -> Dict[str, float]:
    """Return {alpha1, update_omega_every, update_graph_every} for a pair.

    Unknown combinations fall back to a conservative default so user-defined
    datasets and models work out of the box.
    """
    alpha1, m1, m2 = _RETHINK_SETTINGS.get(dataset, {}).get(model, _DEFAULT_SETTING)
    return {"alpha1": alpha1, "update_omega_every": m1, "update_graph_every": m2}
