"""Robustness studies of Figures 7-8: noise injection on edges and features.

Each study compares DGAE against R-DGAE (or any other model pair) on
progressively corrupted copies of a graph, always corrupting both variants
identically and sharing the pretraining weights, as in the paper.  The
corrupted graphs bypass the dataset registry via ``Pipeline.graph(...)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.api.pipeline import Pipeline
from repro.experiments.config import ExperimentConfig
from repro.graph.graph import AttributedGraph
from repro.graph.ops import (
    add_feature_noise,
    add_random_edges,
    drop_random_edges,
    drop_random_features,
)
from repro.models import build_model


def _run_pair_on_graph(
    model_name: str,
    graph: AttributedGraph,
    config: ExperimentConfig,
    seed: int,
) -> Dict[str, Dict[str, float]]:
    """Train D and R-D on an (already corrupted) graph with shared pretraining."""
    pretrain_model = build_model(model_name, graph.num_features, graph.num_clusters, seed=seed)
    pretrain_model.pretrain(graph, epochs=config.pretrain_epochs)
    state = pretrain_model.state_dict()

    shared = (
        Pipeline()
        .graph(graph)
        .model(model_name)
        .seed(seed)
        .pretrained_state(state)
        .training(
            clustering_epochs=config.clustering_epochs,
            rethink_epochs=config.rethink_epochs,
        )
    )
    base_result = shared.base().run()
    rethink_result = shared.rethink().run()
    return {
        "base": base_result.report.as_dict(),
        "rethink": rethink_result.report.as_dict(),
    }


def _sweep(
    model_name: str,
    graph: AttributedGraph,
    corrupt,
    levels: Sequence,
    config: Optional[ExperimentConfig],
    seed: int,
) -> List[Dict]:
    config = config or ExperimentConfig.fast()
    rng_master = np.random.default_rng(seed)
    results: List[Dict] = []
    for level in levels:
        rng = np.random.default_rng(rng_master.integers(0, 2 ** 31))
        corrupted = corrupt(graph, level, rng)
        outcome = _run_pair_on_graph(model_name, corrupted, config, seed)
        results.append({"level": level, **outcome})
    return results


def edge_addition_study(
    model_name: str,
    graph: AttributedGraph,
    num_edges_levels: Sequence[int] = (0, 200, 400, 800),
    config: Optional[ExperimentConfig] = None,
    seed: int = 0,
) -> List[Dict]:
    """Figure 7 (left): add random (noisy) edges and compare D vs R-D."""

    def corrupt(g, level, rng):
        return g if level == 0 else add_random_edges(g, level, rng)

    return _sweep(model_name, graph, corrupt, num_edges_levels, config, seed)


def feature_noise_study(
    model_name: str,
    graph: AttributedGraph,
    variance_levels: Sequence[float] = (0.0, 0.05, 0.1, 0.2),
    config: Optional[ExperimentConfig] = None,
    seed: int = 0,
) -> List[Dict]:
    """Figure 7 (right): add Gaussian feature noise and compare D vs R-D."""

    def corrupt(g, level, rng):
        return add_feature_noise(g, level, rng)

    return _sweep(model_name, graph, corrupt, variance_levels, config, seed)


def edge_removal_study(
    model_name: str,
    graph: AttributedGraph,
    num_edges_levels: Sequence[int] = (0, 200, 400, 800),
    config: Optional[ExperimentConfig] = None,
    seed: int = 0,
) -> List[Dict]:
    """Figure 8 (left): drop existing edges and compare D vs R-D."""

    def corrupt(g, level, rng):
        return g if level == 0 else drop_random_edges(g, level, rng)

    return _sweep(model_name, graph, corrupt, num_edges_levels, config, seed)


def feature_removal_study(
    model_name: str,
    graph: AttributedGraph,
    num_columns_levels: Sequence[int] = (0, 50, 100, 200),
    config: Optional[ExperimentConfig] = None,
    seed: int = 0,
) -> List[Dict]:
    """Figure 8 (right): drop feature columns and compare D vs R-D."""

    def corrupt(g, level, rng):
        return g if level == 0 else drop_random_features(g, level, rng)

    return _sweep(model_name, graph, corrupt, num_columns_levels, config, seed)
