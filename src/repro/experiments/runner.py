"""Train D / R-D pairs and aggregate their clustering metrics.

This is the engine behind Tables 1-4 and 17: for each (model, dataset,
seed) it pretrains the base model once, snapshots the weights, finishes
training the base model, and trains the R- version from the *same* pretrain
snapshot (the paper's fairness protocol: "each couple of methods D and R-D
share the same pretraining weights").

Both variants are executed through :class:`repro.api.Pipeline`; the
functions here keep their historical signatures and
:class:`TrialResult` / :class:`PairResult` return types as the stable
aggregation layer on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.api.pipeline import Pipeline, RunResult
from repro.datasets import load_dataset
from repro.errors import UnknownVariantError
from repro.experiments.config import ExperimentConfig
from repro.graph.graph import AttributedGraph
from repro.metrics.report import ClusteringReport
from repro.models import build_model


@dataclass
class TrialResult:
    """Outcome of a single training run."""

    model: str
    dataset: str
    seed: int
    variant: str  # "base" or "rethink"
    report: ClusteringReport
    runtime_seconds: float
    extra: Dict = field(default_factory=dict)

    @classmethod
    def from_run_result(cls, result: RunResult) -> "TrialResult":
        """Adapt a :class:`~repro.api.pipeline.RunResult` to the legacy shape."""
        extra: Dict = {}
        if result.history is not None:
            extra["history"] = result.history
        return cls(
            model=result.spec.model.name,
            dataset=result.spec.dataset.name,
            seed=result.spec.seed,
            variant=result.spec.variant,
            report=result.report,
            runtime_seconds=result.runtime_seconds,
            extra=extra,
        )


@dataclass
class PairResult:
    """All trials of a (model, dataset) pair, base and R- variants."""

    model: str
    dataset: str
    base_trials: List[TrialResult] = field(default_factory=list)
    rethink_trials: List[TrialResult] = field(default_factory=list)

    def trials(self, variant: str) -> List[TrialResult]:
        """The trials of one variant; unknown variants raise a typed error."""
        if variant == "base":
            return self.base_trials
        if variant == "rethink":
            return self.rethink_trials
        raise UnknownVariantError(variant)

    def best(self, variant: str) -> ClusteringReport:
        """Best-accuracy report among the trials of a variant."""
        trials = self.trials(variant)
        if not trials:
            raise ValueError(f"no trials recorded for variant {variant!r}")
        return max(trials, key=lambda t: t.report.accuracy).report

    def mean_std(self, variant: str) -> Dict[str, Dict[str, float]]:
        """Mean and standard deviation of ACC/NMI/ARI for a variant."""
        return aggregate_reports([t.report for t in self.trials(variant)])


def aggregate_reports(reports: Sequence[ClusteringReport]) -> Dict[str, Dict[str, float]]:
    """Mean/std of each metric over a list of reports (fractions, not %)."""
    if not reports:
        raise ValueError("cannot aggregate an empty list of reports")
    metrics = {"acc": [r.accuracy for r in reports], "nmi": [r.nmi for r in reports], "ari": [r.ari for r in reports]}
    return {
        name: {"mean": float(np.mean(values)), "std": float(np.std(values))}
        for name, values in metrics.items()
    }


def trial_pipeline(
    model_name: str,
    graph: AttributedGraph,
    config: ExperimentConfig,
    seed: int,
    pretrained_state: Optional[Dict[str, np.ndarray]] = None,
) -> Pipeline:
    """Common pipeline prefix shared by the base and rethink runners."""
    pipeline = (
        Pipeline()
        .graph(graph)
        .model(model_name)
        .seed(seed)
        .training(
            pretrain_epochs=config.pretrain_epochs,
            clustering_epochs=config.clustering_epochs,
            rethink_epochs=config.rethink_epochs,
        )
    )
    if pretrained_state is not None:
        pipeline = pipeline.pretrained_state(pretrained_state)
    return pipeline


def run_baseline_model(
    model_name: str,
    graph: AttributedGraph,
    config: ExperimentConfig,
    seed: int,
    pretrained_state: Optional[Dict[str, np.ndarray]] = None,
) -> TrialResult:
    """Train the original model D and evaluate its clustering."""
    pipeline = trial_pipeline(model_name, graph, config, seed, pretrained_state).base()
    return TrialResult.from_run_result(pipeline.run())


def run_rethink_model(
    model_name: str,
    graph: AttributedGraph,
    config: ExperimentConfig,
    seed: int,
    pretrained_state: Optional[Dict[str, np.ndarray]] = None,
    rethink_overrides: Optional[Dict] = None,
) -> TrialResult:
    """Train the R- variant of a model and evaluate its clustering."""
    pipeline = trial_pipeline(model_name, graph, config, seed, pretrained_state).rethink(
        **(rethink_overrides or {})
    )
    return TrialResult.from_run_result(pipeline.run())


def _shared_pretrain_state(model_name, dataset_name, graph, config, seed):
    """The fairness-protocol pretraining snapshot, warm-started when possible.

    With an active artifact store (``REPRO_STORE_DIR``) the shared
    pretraining of a (model, dataset, seed) cell is computed once ever: the
    key excludes the variant, so the D and R-D trials — and every later
    sweep over the same cell — reuse one stored snapshot.  Without a store
    this matches the historical behaviour (pretrain in-process, hand the
    state to both trials).  Either way the trial models keep their own
    freshly seeded RNG streams, so warm results are bitwise identical to
    cold ones.
    """
    from repro.store import Snapshot, active_store, pretrain_cache_key

    store = active_store()
    pretrain_model = build_model(
        model_name, graph.num_features, graph.num_clusters, seed=seed
    )
    if store is None:
        pretrain_model.pretrain(graph, epochs=config.pretrain_epochs)
        return pretrain_model.state_dict(), {
            "enabled": False, "hit": False, "key": None, "store": None,
        }
    key = pretrain_cache_key(
        pretrain_model,
        config.pretrain_epochs,
        dataset={"name": dataset_name, "seed": config.base_seed, "options": {}},
    )
    snapshot = store.get(key, default=None)
    hit = snapshot is not None
    if not hit:
        pretrain_model.pretrain(graph, epochs=config.pretrain_epochs)
        snapshot = Snapshot.capture(
            pretrain_model,
            epoch=config.pretrain_epochs,
            phase="pretrain",
            metadata={"model": model_name, "dataset": dataset_name, "seed": seed},
        )
        store.put(key, snapshot)
    stats = {"enabled": True, "hit": hit, "key": key, "store": store.root}
    return snapshot, stats


def _run_pair_seed(task) -> tuple:
    """One seed's (base, rethink) pair with shared pretraining.

    Module-level so :func:`repro.parallel.parallel_map` can ship it to pool
    workers; everything it needs (names, the frozen config, the seed) is
    picklable, and the graph / pretraining snapshot are rebuilt inside the
    worker from those seeds (or served from the warm-start store).
    """
    model_name, dataset_name, config, rethink_overrides, seed = task
    from repro.parallel import load_dataset_cached

    # Per-process memoisation: a worker handling several seeds of the same
    # sweep builds the (shared, immutable) graph once.
    graph = load_dataset_cached(dataset_name, seed=config.base_seed)
    # Shared pretraining snapshot for fairness.
    state, pretrain_stats = _shared_pretrain_state(
        model_name, dataset_name, graph, config, seed
    )
    base = run_baseline_model(model_name, graph, config, seed, pretrained_state=state)
    rethink = run_rethink_model(
        model_name,
        graph,
        config,
        seed,
        pretrained_state=state,
        rethink_overrides=rethink_overrides,
    )
    base.extra["pretrain_cache"] = dict(pretrain_stats)
    rethink.extra["pretrain_cache"] = dict(pretrain_stats)
    return base, rethink


def run_model_pair(
    model_name: str,
    dataset_name: str,
    config: Optional[ExperimentConfig] = None,
    rethink_overrides: Optional[Dict] = None,
    jobs=None,
    store_dir: Optional[str] = None,
) -> PairResult:
    """Run D and R-D over ``config.num_trials`` seeds with shared pretraining.

    ``jobs`` fans the seeds out over a process pool (``None``/1 serial, an
    int, or ``"auto"``); each seed is an independent, fully seeded work
    unit, so the aggregated tables are identical for any ``jobs`` value.
    ``store_dir`` points the sweep at a warm-start artifact store: the
    shared per-seed pretraining is then served from the store when present
    (and written to it otherwise), so re-running the sweep skips every
    pretraining phase while producing bitwise-identical tables.  The
    per-trial hit/miss record lands in ``TrialResult.extra['pretrain_cache']``.
    """
    from repro.parallel import parallel_map
    from repro.store import store_env

    config = config or ExperimentConfig()
    tasks = [
        (
            model_name,
            dataset_name,
            config,
            rethink_overrides,
            config.base_seed + trial,
        )
        for trial in range(config.num_trials)
    ]
    with store_env(store_dir):
        outcomes = parallel_map(_run_pair_seed, tasks, jobs=jobs)
    pair = PairResult(model=model_name, dataset=dataset_name)
    for base, rethink in outcomes:
        pair.base_trials.append(base)
        pair.rethink_trials.append(rethink)
    return pair
