"""Train D / R-D pairs and aggregate their clustering metrics.

This is the engine behind Tables 1-4 and 17: for each (model, dataset,
seed) it pretrains the base model once, snapshots the weights, finishes
training the base model, and trains the R- version from the *same* pretrain
snapshot (the paper's fairness protocol: "each couple of methods D and R-D
share the same pretraining weights").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.rethink import RethinkConfig, RethinkTrainer
from repro.datasets import load_dataset
from repro.experiments.config import ExperimentConfig, rethink_hyperparameters
from repro.graph.graph import AttributedGraph
from repro.metrics.report import ClusteringReport, evaluate_clustering
from repro.models import build_model
from repro.models.registry import model_group


@dataclass
class TrialResult:
    """Outcome of a single training run."""

    model: str
    dataset: str
    seed: int
    variant: str  # "base" or "rethink"
    report: ClusteringReport
    runtime_seconds: float
    extra: Dict = field(default_factory=dict)


@dataclass
class PairResult:
    """All trials of a (model, dataset) pair, base and R- variants."""

    model: str
    dataset: str
    base_trials: List[TrialResult] = field(default_factory=list)
    rethink_trials: List[TrialResult] = field(default_factory=list)

    def best(self, variant: str) -> ClusteringReport:
        """Best-accuracy report among the trials of a variant."""
        trials = self.base_trials if variant == "base" else self.rethink_trials
        if not trials:
            raise ValueError(f"no trials recorded for variant {variant!r}")
        return max(trials, key=lambda t: t.report.accuracy).report

    def mean_std(self, variant: str) -> Dict[str, Dict[str, float]]:
        """Mean and standard deviation of ACC/NMI/ARI for a variant."""
        trials = self.base_trials if variant == "base" else self.rethink_trials
        return aggregate_reports([t.report for t in trials])


def aggregate_reports(reports: Sequence[ClusteringReport]) -> Dict[str, Dict[str, float]]:
    """Mean/std of each metric over a list of reports (fractions, not %)."""
    if not reports:
        raise ValueError("cannot aggregate an empty list of reports")
    metrics = {"acc": [r.accuracy for r in reports], "nmi": [r.nmi for r in reports], "ari": [r.ari for r in reports]}
    return {
        name: {"mean": float(np.mean(values)), "std": float(np.std(values))}
        for name, values in metrics.items()
    }


def run_baseline_model(
    model_name: str,
    graph: AttributedGraph,
    config: ExperimentConfig,
    seed: int,
    pretrained_state: Optional[Dict[str, np.ndarray]] = None,
) -> TrialResult:
    """Train the original model D and evaluate its clustering."""
    start = time.perf_counter()
    model = build_model(model_name, graph.num_features, graph.num_clusters, seed=seed)
    if pretrained_state is not None:
        model.load_state_dict(pretrained_state)
    else:
        model.pretrain(graph, epochs=config.pretrain_epochs)
    if model_group(model_name) == "second":
        model.fit_clustering(graph, epochs=config.clustering_epochs)
    labels = model.predict_labels(graph)
    runtime = time.perf_counter() - start
    return TrialResult(
        model=model_name,
        dataset=graph.name,
        seed=seed,
        variant="base",
        report=evaluate_clustering(graph.labels, labels),
        runtime_seconds=runtime,
    )


def run_rethink_model(
    model_name: str,
    graph: AttributedGraph,
    config: ExperimentConfig,
    seed: int,
    pretrained_state: Optional[Dict[str, np.ndarray]] = None,
    rethink_overrides: Optional[Dict] = None,
) -> TrialResult:
    """Train the R- variant of a model and evaluate its clustering."""
    start = time.perf_counter()
    model = build_model(model_name, graph.num_features, graph.num_clusters, seed=seed)
    pretrained = pretrained_state is not None
    if pretrained:
        model.load_state_dict(pretrained_state)
    hyper = rethink_hyperparameters(graph.name, model_name)
    settings = dict(
        alpha1=hyper["alpha1"],
        update_omega_every=hyper["update_omega_every"],
        update_graph_every=hyper["update_graph_every"],
        epochs=config.rethink_epochs,
        pretrain_epochs=config.pretrain_epochs,
    )
    if rethink_overrides:
        settings.update(rethink_overrides)
    trainer = RethinkTrainer(model, RethinkConfig(**settings))
    history = trainer.fit(graph, pretrained=pretrained)
    runtime = time.perf_counter() - start
    return TrialResult(
        model=model_name,
        dataset=graph.name,
        seed=seed,
        variant="rethink",
        report=history.final_report,
        runtime_seconds=runtime,
        extra={"history": history},
    )


def run_model_pair(
    model_name: str,
    dataset_name: str,
    config: Optional[ExperimentConfig] = None,
    rethink_overrides: Optional[Dict] = None,
) -> PairResult:
    """Run D and R-D over ``config.num_trials`` seeds with shared pretraining."""
    config = config or ExperimentConfig()
    pair = PairResult(model=model_name, dataset=dataset_name)
    for trial in range(config.num_trials):
        seed = config.base_seed + trial
        graph = load_dataset(dataset_name, seed=config.base_seed)
        # Shared pretraining snapshot for fairness.
        pretrain_model = build_model(
            model_name, graph.num_features, graph.num_clusters, seed=seed
        )
        pretrain_model.pretrain(graph, epochs=config.pretrain_epochs)
        state = pretrain_model.state_dict()
        pair.base_trials.append(
            run_baseline_model(model_name, graph, config, seed, pretrained_state=state)
        )
        pair.rethink_trials.append(
            run_rethink_model(
                model_name,
                graph,
                config,
                seed,
                pretrained_state=state,
                rethink_overrides=rethink_overrides,
            )
        )
    return pair
