"""Learning-dynamics studies behind Figures 4, 5, 6, 9 and 10.

* :func:`learning_dynamics_study` trains an R- model with the tracking
  callbacks attached (``dynamics``, ``fr_fd``, ``graph_snapshots`` from the
  callback registry) and returns the growth of the decidable set Ω, the
  per-group accuracies, the link bookkeeping of the operator-built graph,
  and the Λ_FR / Λ_FD traces.
* :func:`latent_separability_study` compares the latent spaces of a D / R-D
  pair over training (the quantitative counterpart of the t-SNE plots of
  Figure 10): a 2-D PCA projection plus a cluster-separability ratio.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.api.pipeline import Pipeline
from repro.core.rethink import RethinkConfig, RethinkTrainer
from repro.experiments.config import ExperimentConfig, rethink_hyperparameters
from repro.graph.graph import AttributedGraph
from repro.graph.stats import star_subgraph_count
from repro.metrics.report import evaluate_clustering
from repro.models import build_model
from repro.models.registry import model_group


def learning_dynamics_study(
    model_name: str,
    graph: AttributedGraph,
    config: Optional[ExperimentConfig] = None,
    seed: int = 0,
    track_fr: bool = True,
    track_fd: bool = True,
    snapshot_every: int = 20,
) -> Dict:
    """Train R-<model> with full tracking and summarise the dynamics.

    Returns a dictionary containing the RethinkHistory plus derived
    statistics (star-subgraph counts of the snapshots, used by Figure 4).
    """
    config = config or ExperimentConfig.fast()
    result = (
        Pipeline()
        .graph(graph)
        .model(model_name)
        .seed(seed)
        .training(
            pretrain_epochs=config.pretrain_epochs,
            rethink_epochs=config.rethink_epochs,
        )
        .rethink(
            evaluate_every=max(1, config.rethink_epochs // 10),
            stop_at_convergence=False,
        )
        .callbacks(
            "dynamics",
            {
                "name": "fr_fd",
                "track_fr": track_fr and model_group(model_name) == "second",
                "track_fd": track_fd,
            },
            {"name": "graph_snapshots", "every": snapshot_every},
        )
        .run()
    )
    history = result.history
    snapshots_summary = {
        epoch: {
            "num_edges": int(np.triu(snapshot > 0, k=1).sum()),
            "star_subgraphs": star_subgraph_count(snapshot),
        }
        for epoch, snapshot in history.graph_snapshots.items()
    }
    return {
        "history": history,
        "graph_snapshot_summary": snapshots_summary,
        "final_report": history.final_report,
    }


def _pca_2d(embeddings: np.ndarray) -> np.ndarray:
    """2-D PCA projection (centre, top-2 principal directions)."""
    centered = embeddings - embeddings.mean(axis=0)
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    return centered @ vt[:2].T


def cluster_separability(embeddings: np.ndarray, labels: np.ndarray) -> float:
    """Between-cluster / within-cluster scatter ratio (higher = more separable)."""
    embeddings = np.asarray(embeddings, dtype=np.float64)
    labels = np.asarray(labels)
    overall_mean = embeddings.mean(axis=0)
    within = 0.0
    between = 0.0
    for cluster in np.unique(labels):
        members = embeddings[labels == cluster]
        center = members.mean(axis=0)
        within += float(np.sum((members - center) ** 2))
        between += members.shape[0] * float(np.sum((center - overall_mean) ** 2))
    if within == 0.0:
        return float("inf")
    return between / within


def latent_separability_study(
    model_name: str,
    graph: AttributedGraph,
    config: Optional[ExperimentConfig] = None,
    seed: int = 0,
    checkpoints: int = 4,
) -> Dict:
    """Figure 10 counterpart: separability of D vs R-D latent spaces over training.

    The chunked, incremental protocol (resuming training of the *same*
    model object between checkpoints) is below the granularity of a
    :class:`~repro.api.Pipeline` run, so this study drives the
    :class:`~repro.core.rethink.RethinkTrainer` directly.
    """
    config = config or ExperimentConfig.fast()
    # Shared pretraining.
    pretrain_model = build_model(model_name, graph.num_features, graph.num_clusters, seed=seed)
    pretrain_model.pretrain(graph, epochs=config.pretrain_epochs)
    state = pretrain_model.state_dict()

    def checkpoint_epochs(total: int) -> list:
        if checkpoints <= 1:
            return [total]
        step = max(1, total // (checkpoints - 1))
        return sorted(set(list(range(0, total + 1, step)) + [total]))

    results: Dict[str, Dict[int, Dict[str, float]]] = {"base": {}, "rethink": {}}

    # Base model: record separability at evenly spaced clustering epochs.
    base = build_model(model_name, graph.num_features, graph.num_clusters, seed=seed)
    base.load_state_dict(state)
    epochs_list = checkpoint_epochs(config.clustering_epochs)
    previous = 0
    for epoch in epochs_list:
        chunk = epoch - previous
        if chunk > 0 and model_group(model_name) == "second":
            base.fit_clustering(graph, epochs=chunk)
        previous = epoch
        embeddings = base.embed(graph)
        results["base"][epoch] = {
            "separability": cluster_separability(embeddings, graph.labels),
            "accuracy": evaluate_clustering(graph.labels, base.predict_labels(graph)).accuracy,
        }

    # R- model: same protocol, chunked RethinkTrainer runs.
    rethought = build_model(model_name, graph.num_features, graph.num_clusters, seed=seed)
    rethought.load_state_dict(state)
    hyper = rethink_hyperparameters(graph.name, model_name)
    previous = 0
    epochs_list = checkpoint_epochs(config.rethink_epochs)
    for epoch in epochs_list:
        chunk = epoch - previous
        if chunk > 0:
            trainer = RethinkTrainer(
                rethought,
                RethinkConfig(
                    alpha1=hyper["alpha1"],
                    update_omega_every=hyper["update_omega_every"],
                    update_graph_every=hyper["update_graph_every"],
                    epochs=chunk,
                    stop_at_convergence=False,
                ),
            )
            trainer.fit(graph, pretrained=True)
        previous = epoch
        embeddings = rethought.embed(graph)
        results["rethink"][epoch] = {
            "separability": cluster_separability(embeddings, graph.labels),
            "accuracy": evaluate_clustering(
                graph.labels, rethought.predict_labels(graph)
            ).accuracy,
        }

    final_projection = {
        "base": _pca_2d(base.embed(graph)),
        "rethink": _pca_2d(rethought.embed(graph)),
    }
    return {"trajectory": results, "projection_2d": final_projection}
