"""Experiment harness: everything needed to regenerate the paper's tables and figures."""

from repro.experiments.config import ExperimentConfig, rethink_hyperparameters
from repro.experiments.runner import (
    PairResult,
    TrialResult,
    run_baseline_model,
    run_rethink_model,
    run_model_pair,
    aggregate_reports,
)
from repro.experiments.tables import format_table, format_mean_std_table
from repro.experiments.robustness import (
    edge_addition_study,
    edge_removal_study,
    feature_noise_study,
    feature_removal_study,
)
from repro.experiments.dynamics import learning_dynamics_study, latent_separability_study
from repro.experiments.sensitivity import threshold_sensitivity_study, gamma_sensitivity_study
from repro.experiments.ablation import (
    protection_vs_correction_fr,
    protection_vs_correction_fd,
    threshold_ablation,
    edge_operation_ablation,
)
from repro.experiments.timing import runtime_comparison

__all__ = [
    "ExperimentConfig",
    "rethink_hyperparameters",
    "PairResult",
    "TrialResult",
    "run_baseline_model",
    "run_rethink_model",
    "run_model_pair",
    "aggregate_reports",
    "format_table",
    "format_mean_std_table",
    "edge_addition_study",
    "edge_removal_study",
    "feature_noise_study",
    "feature_removal_study",
    "learning_dynamics_study",
    "latent_separability_study",
    "threshold_sensitivity_study",
    "gamma_sensitivity_study",
    "protection_vs_correction_fr",
    "protection_vs_correction_fd",
    "threshold_ablation",
    "edge_operation_ablation",
    "runtime_comparison",
]
