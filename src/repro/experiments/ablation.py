"""Ablation studies of Tables 6, 7, 8 and 9.

Each ablation is one :class:`repro.api.Pipeline` run with the relevant
R- config fields overridden, always from a shared pretraining snapshot.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.api.pipeline import Pipeline
from repro.experiments.config import ExperimentConfig
from repro.graph.graph import AttributedGraph
from repro.models import build_model


def _run_with_overrides(
    model_name: str,
    graph: AttributedGraph,
    config: ExperimentConfig,
    state,
    seed: int,
    **overrides,
) -> Dict[str, float]:
    """Train an R- model from a shared pretraining state with config overrides."""
    result = (
        Pipeline()
        .graph(graph)
        .model(model_name)
        .seed(seed)
        .pretrained_state(state)
        .training(rethink_epochs=config.rethink_epochs)
        .rethink(**overrides)
        .run()
    )
    return result.report.as_dict()


def _shared_pretraining(model_name: str, graph: AttributedGraph, config: ExperimentConfig, seed: int):
    model = build_model(model_name, graph.num_features, graph.num_clusters, seed=seed)
    model.pretrain(graph, epochs=config.pretrain_epochs)
    return model.state_dict()


def protection_vs_correction_fr(
    model_name: str,
    graph: AttributedGraph,
    delays: Sequence[int] = (0, 10, 30, 50),
    config: Optional[ExperimentConfig] = None,
    seed: int = 0,
) -> List[Dict]:
    """Table 6: protection (no delay) vs correction (delayed sampling) against FR.

    Delay 0 is the protection mechanism; positive delays let Feature
    Randomness occur before the sampling operator Ξ kicks in.
    """
    config = config or ExperimentConfig.fast()
    state = _shared_pretraining(model_name, graph, config, seed)
    results: List[Dict] = []
    for delay in delays:
        report = _run_with_overrides(
            model_name, graph, config, state, seed, protection_delay=delay
        )
        results.append({"delay": delay, "mechanism": "protection" if delay == 0 else "correction", **report})
    return results


def protection_vs_correction_fd(
    model_name: str,
    graph: AttributedGraph,
    config: Optional[ExperimentConfig] = None,
    seed: int = 0,
) -> List[Dict]:
    """Table 7: protection (single-step Υ on all nodes) vs correction (gradual Υ on Ω)."""
    config = config or ExperimentConfig.fast()
    state = _shared_pretraining(model_name, graph, config, seed)
    protection = _run_with_overrides(
        model_name, graph, config, state, seed, single_step_transform=True
    )
    correction = _run_with_overrides(
        model_name, graph, config, state, seed, single_step_transform=False
    )
    return [
        {"mechanism": "protection", **protection},
        {"mechanism": "correction", **correction},
    ]


def threshold_ablation(
    model_name: str,
    graph: AttributedGraph,
    config: Optional[ExperimentConfig] = None,
    seed: int = 0,
) -> List[Dict]:
    """Table 8: ablate the α1 and α2 criteria of the sampling operator Ξ."""
    config = config or ExperimentConfig.fast()
    state = _shared_pretraining(model_name, graph, config, seed)
    cases = [
        ("ablation of alpha2", dict(use_margin_criterion=False)),
        ("ablation of alpha1", dict(use_confidence_criterion=False)),
        ("ablation of both", dict(use_sampling=False)),
        ("no ablation", dict()),
    ]
    results: List[Dict] = []
    for label, overrides in cases:
        report = _run_with_overrides(model_name, graph, config, state, seed, **overrides)
        results.append({"case": label, **report})
    return results


def edge_operation_ablation(
    model_name: str,
    graph: AttributedGraph,
    config: Optional[ExperimentConfig] = None,
    seed: int = 0,
) -> List[Dict]:
    """Table 9: ablate the add_edge / drop_edge operations of the operator Υ."""
    config = config or ExperimentConfig.fast()
    state = _shared_pretraining(model_name, graph, config, seed)
    cases = [
        ("ablation of drop_edge", dict(drop_edges=False)),
        ("ablation of add_edge", dict(add_edges=False)),
        ("ablation of both", dict(use_graph_transform=False)),
        ("no ablation", dict()),
    ]
    results: List[Dict] = []
    for label, overrides in cases:
        report = _run_with_overrides(model_name, graph, config, state, seed, **overrides)
        results.append({"case": label, **report})
    return results
