"""Gradient-descent optimizers.

Both GAE pretraining and the clustering phase of every model in the paper
use Adam with learning rate 0.01; SGD is provided for ablations and tests.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    """Base optimizer operating on a fixed list of parameters."""

    def __init__(self, parameters: Iterable[Tensor]) -> None:
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: Optional[List[np.ndarray]] = None
        if self.momentum > 0.0:
            self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * param.data
            if self._velocity is not None:
                self._velocity[index] = self.momentum * self._velocity[index] - self.lr * grad
                param.data = param.data + self._velocity[index]
            else:
                param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.01,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = float(lr)
        try:
            beta1, beta2 = betas
            self.beta1, self.beta2 = float(beta1), float(beta2)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"betas must be a pair of numbers in [0, 1), got {betas!r}"
            ) from exc
        for name, beta in (("beta1", self.beta1), ("beta2", self.beta2)):
            if not 0.0 <= beta < 1.0:
                raise ValueError(f"{name} must lie in [0, 1), got {beta!r}")
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * param.data
            self._m[index] = self.beta1 * self._m[index] + (1.0 - self.beta1) * grad
            self._v[index] = self.beta2 * self._v[index] + (1.0 - self.beta2) * grad ** 2
            m_hat = self._m[index] / bias1
            v_hat = self._v[index] / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
