"""Gradient-descent optimizers.

Both GAE pretraining and the clustering phase of every model in the paper
use Adam with learning rate 0.01; SGD is provided for ablations and tests.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    """Base optimizer operating on a fixed list of parameters."""

    def __init__(self, parameters: Iterable[Tensor]) -> None:
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Serializable optimizer state (hyper-parameters plus buffers).

        Loading the result with :meth:`load_state_dict` into an optimizer
        over the same parameters makes subsequent steps bitwise identical
        to an uninterrupted run — the contract the snapshot/resume tests of
        :mod:`repro.store` pin down.
        """
        raise NotImplementedError

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore state produced by :meth:`state_dict` (inverse operation)."""
        raise NotImplementedError

    def _check_state(self, state: Dict[str, Any]) -> None:
        """Shared validation: type tag and per-parameter buffer shapes."""
        if not isinstance(state, dict):
            raise ValueError(f"optimizer state must be a dict, got {type(state).__name__}")
        expected = type(self).__name__
        found = state.get("type")
        if found != expected:
            raise ValueError(
                f"optimizer state was produced by {found!r}, cannot load into {expected}"
            )

    def _check_buffers(self, buffers, what: str) -> List[np.ndarray]:
        buffers = list(buffers)
        if len(buffers) != len(self.parameters):
            raise ValueError(
                f"optimizer state holds {len(buffers)} {what} buffers but the "
                f"optimizer has {len(self.parameters)} parameters"
            )
        restored = []
        for index, (buffer, param) in enumerate(zip(buffers, self.parameters)):
            buffer = np.asarray(buffer, dtype=np.float64)
            if buffer.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {what} buffer {index}: "
                    f"{buffer.shape} vs parameter {param.data.shape}"
                )
            restored.append(buffer.copy())
        return restored


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: Optional[List[np.ndarray]] = None
        if self.momentum > 0.0:
            self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * param.data
            if self._velocity is not None:
                self._velocity[index] = self.momentum * self._velocity[index] - self.lr * grad
                param.data = param.data + self._velocity[index]
            else:
                param.data = param.data - self.lr * grad

    def state_dict(self) -> Dict[str, Any]:
        return {
            "type": "SGD",
            "lr": self.lr,
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "velocity": None
            if self._velocity is None
            else [buffer.copy() for buffer in self._velocity],
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self._check_state(state)
        self.lr = float(state["lr"])
        self.momentum = float(state["momentum"])
        self.weight_decay = float(state["weight_decay"])
        velocity = state.get("velocity")
        self._velocity = None if velocity is None else self._check_buffers(velocity, "velocity")


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.01,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = float(lr)
        try:
            beta1, beta2 = betas
            self.beta1, self.beta2 = float(beta1), float(beta2)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"betas must be a pair of numbers in [0, 1), got {betas!r}"
            ) from exc
        for name, beta in (("beta1", self.beta1), ("beta2", self.beta2)):
            if not 0.0 <= beta < 1.0:
                raise ValueError(f"{name} must lie in [0, 1), got {beta!r}")
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * param.data
            self._m[index] = self.beta1 * self._m[index] + (1.0 - self.beta1) * grad
            self._v[index] = self.beta2 * self._v[index] + (1.0 - self.beta2) * grad ** 2
            m_hat = self._m[index] / bias1
            v_hat = self._v[index] / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict[str, Any]:
        return {
            "type": "Adam",
            "lr": self.lr,
            "betas": (self.beta1, self.beta2),
            "eps": self.eps,
            "weight_decay": self.weight_decay,
            "step_count": self._step_count,
            "m": [buffer.copy() for buffer in self._m],
            "v": [buffer.copy() for buffer in self._v],
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self._check_state(state)
        self.lr = float(state["lr"])
        self.beta1, self.beta2 = (float(beta) for beta in state["betas"])
        self.eps = float(state["eps"])
        self.weight_decay = float(state["weight_decay"])
        self._step_count = int(state["step_count"])
        self._m = self._check_buffers(state["m"], "first-moment")
        self._v = self._check_buffers(state["v"], "second-moment")
