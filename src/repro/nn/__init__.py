"""Minimal neural-network substrate built on numpy.

This subpackage replaces the PyTorch dependency of the original R-GAE code
base with a small, self-contained reverse-mode automatic differentiation
engine.  It provides exactly what the paper's models need:

* :class:`~repro.nn.tensor.Tensor` — an autograd-enabled array wrapper.
* Functional ops (``relu``, ``sigmoid``, ``softplus``, reductions, matmul).
* Layers — :class:`~repro.nn.layers.Dense`,
  :class:`~repro.nn.layers.GraphConvolution`,
  :class:`~repro.nn.layers.InnerProductDecoder`.
* Optimizers — :class:`~repro.nn.optim.SGD`, :class:`~repro.nn.optim.Adam`.

The engine is intentionally dense-matrix based: the paper's encoders are two
GCN layers with 32/16 hidden units on graphs with at most a few thousand
nodes, which fits comfortably in dense numpy arrays.
"""

from repro.nn.tensor import Tensor, no_grad
from repro.nn import functional
from repro.nn.module import Module, Parameter
from repro.nn.layers import Dense, GraphConvolution, InnerProductDecoder, MLP
from repro.nn.init import glorot_uniform, zeros, normal
from repro.nn.optim import SGD, Adam, Optimizer

__all__ = [
    "Tensor",
    "no_grad",
    "functional",
    "Module",
    "Parameter",
    "Dense",
    "GraphConvolution",
    "InnerProductDecoder",
    "MLP",
    "glorot_uniform",
    "zeros",
    "normal",
    "SGD",
    "Adam",
    "Optimizer",
]
