"""Minimal neural-network substrate built on numpy.

This subpackage replaces the PyTorch dependency of the original R-GAE code
base with a small, self-contained reverse-mode automatic differentiation
engine.  It provides exactly what the paper's models need:

* :class:`~repro.nn.tensor.Tensor` — an autograd-enabled array wrapper.
* Functional ops (``relu``, ``sigmoid``, ``softplus``, reductions, matmul,
  and the sparse propagation primitive :func:`~repro.nn.functional.spmm`).
* Layers — :class:`~repro.nn.layers.Dense`,
  :class:`~repro.nn.layers.GraphConvolution`,
  :class:`~repro.nn.layers.InnerProductDecoder`.
* Optimizers — :class:`~repro.nn.optim.SGD`, :class:`~repro.nn.optim.Adam`.

Dense tensors remain the default substrate, but graph propagation also runs
against the CSR backend in :mod:`repro.graph.sparse`: pass a
:class:`~repro.graph.sparse.SparseAdjacency` to a
:class:`~repro.nn.layers.GraphConvolution` (or call
:func:`~repro.nn.functional.spmm` directly) and both the forward and the
backward pass cost O(|E| d) instead of O(N² d).
"""

from repro.nn.tensor import Tensor, no_grad
from repro.nn import functional
from repro.nn.functional import spmm
from repro.nn.module import Module, Parameter
from repro.nn.layers import Dense, GraphConvolution, InnerProductDecoder, MLP
from repro.nn.init import glorot_uniform, zeros, normal
from repro.nn.optim import SGD, Adam, Optimizer

__all__ = [
    "Tensor",
    "no_grad",
    "functional",
    "spmm",
    "Module",
    "Parameter",
    "Dense",
    "GraphConvolution",
    "InnerProductDecoder",
    "MLP",
    "glorot_uniform",
    "zeros",
    "normal",
    "SGD",
    "Adam",
    "Optimizer",
]
