"""Functional wrappers around :class:`~repro.nn.tensor.Tensor` operations.

These mirror the ``torch.nn.functional`` style API the original code base
uses, plus the loss functions specific to graph auto-encoders (dense binary
cross-entropy over the reconstructed adjacency, KL terms for the variational
models, and the KL clustering loss of DGAE).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.nn.tensor import Tensor, as_tensor
from repro.observability.tracer import span as _span

ArrayOrTensor = Union[np.ndarray, Tensor]


def relu(x: ArrayOrTensor) -> Tensor:
    """Element-wise rectified linear unit."""
    return as_tensor(x).relu()


def sigmoid(x: ArrayOrTensor) -> Tensor:
    """Element-wise logistic sigmoid."""
    return as_tensor(x).sigmoid()


def tanh(x: ArrayOrTensor) -> Tensor:
    """Element-wise hyperbolic tangent."""
    return as_tensor(x).tanh()


def softplus(x: ArrayOrTensor) -> Tensor:
    """Numerically stable ``log(1 + exp(x))``."""
    return as_tensor(x).softplus()


def exp(x: ArrayOrTensor) -> Tensor:
    return as_tensor(x).exp()


def log(x: ArrayOrTensor) -> Tensor:
    return as_tensor(x).log()


def linear(x: ArrayOrTensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight + bias``."""
    out = as_tensor(x) @ weight
    if bias is not None:
        out = out + bias
    return out


def spmm(adjacency, x: ArrayOrTensor) -> Tensor:
    """Sparse-dense product ``A @ X`` with autograd support through ``X``.

    ``adjacency`` is a constant :class:`~repro.graph.sparse.SparseAdjacency`
    (or any object exposing ``matmul``/``transpose``): the GCN propagation
    matrix is fixed for a given graph, so no gradient flows into it.  The
    backward pass is ``∂L/∂X = Aᵀ @ ∂L/∂out``, also computed sparsely, which
    keeps both directions at O(nnz · d) instead of O(N² d).
    """
    x_t = as_tensor(x)
    with _span("kernel.spmm"):
        out_data = adjacency.matmul(x_t.data)
    adjacency_t = adjacency.transpose()

    def backward(grad: np.ndarray):
        return (adjacency_t.matmul(grad),)

    return x_t._make_child(out_data, (x_t,), backward)


def dropout(x: ArrayOrTensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout.

    During evaluation (``training=False``) or with ``rate=0`` the input is
    returned unchanged.
    """
    x = as_tensor(x)
    if not training or rate <= 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(np.float64) / keep
    return x * mask


def softmax(x: ArrayOrTensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def binary_cross_entropy_with_logits(
    logits: ArrayOrTensor,
    targets: ArrayOrTensor,
    pos_weight: Optional[float] = None,
    norm: float = 1.0,
) -> Tensor:
    """Mean binary cross-entropy computed from logits.

    This is the reconstruction loss of all GAE models: ``logits`` is the
    dense matrix ``Z Z^T`` and ``targets`` the (possibly rewritten)
    self-supervision adjacency matrix.  ``pos_weight`` re-weights positive
    entries, which the original implementations use to counter the extreme
    sparsity of real graphs.  ``norm`` is a scalar multiplier applied to the
    final mean (the usual ``N^2 / (2 * #neg)`` normalisation).
    """
    logits = as_tensor(logits)
    targets_arr = np.asarray(
        targets.data if isinstance(targets, Tensor) else targets, dtype=np.float64
    )
    targets_t = Tensor(targets_arr)
    # log(1 + exp(logits)) - targets * logits, optionally with pos_weight on
    # the positive term: -[w*y*log(sig) + (1-y)*log(1-sig)].
    if pos_weight is None:
        losses = logits.softplus() - targets_t * logits
    else:
        w = float(pos_weight)
        # -(w*y*log(s) + (1-y)*log(1-s))
        #  = (1 + (w-1)*y) * softplus(logits) - w*y*logits   [derivation below]
        # log(s) = -softplus(-x), log(1-s) = -softplus(x)
        # loss = w*y*softplus(-x) + (1-y)*softplus(x)
        neg_logits = -logits
        losses = targets_t * (w * neg_logits.softplus()) + (1.0 - targets_t) * logits.softplus()
    return losses.mean() * norm


def binary_cross_entropy_sum(logits: ArrayOrTensor, targets: ArrayOrTensor) -> Tensor:
    """Summed (not averaged) BCE from logits.

    The theoretical decompositions in the paper (Proposition 1, Theorem 1)
    are stated for the *sum* over all node pairs, so the analysis code uses
    this variant.
    """
    logits = as_tensor(logits)
    targets_arr = np.asarray(
        targets.data if isinstance(targets, Tensor) else targets, dtype=np.float64
    )
    targets_t = Tensor(targets_arr)
    losses = logits.softplus() - targets_t * logits
    return losses.sum()


def gaussian_kl_divergence(mu: Tensor, log_sigma: Tensor) -> Tensor:
    """KL( N(mu, sigma^2) || N(0, I) ) averaged over nodes.

    Used by VGAE-style models; ``log_sigma`` holds log standard deviations.
    """
    n = mu.shape[0]
    term = 1.0 + 2.0 * log_sigma - mu * mu - (2.0 * log_sigma).exp()
    return term.sum() * (-0.5 / n)


def kl_divergence_rows(p: ArrayOrTensor, q: ArrayOrTensor, eps: float = 1e-12) -> Tensor:
    """Row-wise ``KL(p || q)`` summed over all rows.

    Both arguments are (N, K) row-stochastic matrices.  This is the DGAE
    clustering loss ``KL(Q || P)`` of Appendix B when called as
    ``kl_divergence_rows(target, soft_assignment)``.
    """
    p = as_tensor(p)
    q = as_tensor(q)
    p_safe = p + eps
    q_safe = q + eps
    return (p * (p_safe.log() - q_safe.log())).sum()


def mean_squared_error(pred: ArrayOrTensor, target: ArrayOrTensor) -> Tensor:
    """Mean squared error between two arrays."""
    pred = as_tensor(pred)
    target_t = as_tensor(target).detach()
    diff = pred - target_t
    return (diff * diff).mean()


def frobenius_norm_squared(x: ArrayOrTensor) -> Tensor:
    """Squared Frobenius norm of a matrix."""
    x = as_tensor(x)
    return (x * x).sum()


def pairwise_squared_distances(z: np.ndarray) -> np.ndarray:
    """Dense (N, N) matrix of squared Euclidean distances (numpy only)."""
    sq = np.sum(z ** 2, axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * z @ z.T
    np.maximum(d2, 0.0, out=d2)
    return d2
