"""Weight initialisation schemes used by the GAE model family."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


def glorot_uniform(fan_in: int, fan_out: int, rng: np.random.Generator) -> Tensor:
    """Glorot/Xavier uniform initialisation, as in Kipf & Welling's GAE code."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    data = rng.uniform(-limit, limit, size=(fan_in, fan_out))
    return Tensor(data, requires_grad=True)


def zeros(*shape: int) -> Tensor:
    """Zero-initialised trainable tensor (used for biases)."""
    return Tensor(np.zeros(shape), requires_grad=True)


def normal(shape, scale: float, rng: np.random.Generator) -> Tensor:
    """Gaussian initialisation with standard deviation ``scale``."""
    return Tensor(rng.normal(0.0, scale, size=shape), requires_grad=True)
