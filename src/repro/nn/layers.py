"""Neural layers used by the GAE model family.

* :class:`Dense` — fully-connected layer.
* :class:`GraphConvolution` — Kipf & Welling GCN layer
  ``H' = act(A_norm H W + b)`` where ``A_norm`` is the symmetrically
  normalised adjacency (a constant for a given graph).
* :class:`InnerProductDecoder` — the GAE decoder ``sigmoid(Z Z^T)``
  (exposed as logits ``Z Z^T`` so losses can be computed stably).
* :class:`MLP` — a stack of dense layers, used by the adversarial
  discriminator of ARGAE/ARVGAE and by the theory experiments on extra
  encoder/decoder layers.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.graph.sparse import SparseAdjacency
from repro.nn import functional as F
from repro.nn.init import glorot_uniform, zeros
from repro.nn.module import Module
from repro.nn.tensor import Tensor, as_tensor

Activation = Optional[Callable[[Tensor], Tensor]]

_ACTIVATIONS = {
    None: None,
    "linear": None,
    "relu": F.relu,
    "sigmoid": F.sigmoid,
    "tanh": F.tanh,
}


def resolve_activation(activation) -> Activation:
    """Map an activation name (or callable) to a callable or ``None``."""
    if callable(activation):
        return activation
    if activation in _ACTIVATIONS:
        return _ACTIVATIONS[activation]
    raise ValueError(f"unknown activation: {activation!r}")


class Dense(Module):
    """Fully-connected layer ``act(x W + b)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation="relu",
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = glorot_uniform(in_features, out_features, rng)
        self.bias = zeros(out_features) if bias else None
        self.activation = resolve_activation(activation)

    def forward(self, x) -> Tensor:
        out = F.linear(as_tensor(x), self.weight, self.bias)
        if self.activation is not None:
            out = self.activation(out)
        return out


class GraphConvolution(Module):
    """Graph convolutional layer ``act(A_norm X W + b)``.

    The normalised adjacency is passed at call time so the same layer can be
    evaluated against different self-supervision graphs (the R- operators
    rewrite the graph during training).  It may be a dense ``(N, N)`` array
    or a :class:`~repro.graph.sparse.SparseAdjacency`; the sparse form runs
    propagation (forward and backward) in O(|E| d) via :func:`repro.nn.functional.spmm`.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation="relu",
        bias: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = glorot_uniform(in_features, out_features, rng)
        self.bias = zeros(out_features) if bias else None
        self.activation = resolve_activation(activation)

    def forward(self, x, adj_norm) -> Tensor:
        support = as_tensor(x) @ self.weight
        if isinstance(adj_norm, SparseAdjacency):
            out = F.spmm(adj_norm, support)
        else:
            adj = Tensor(np.asarray(adj_norm, dtype=np.float64))  # repro: noqa[REP002] dense half of the dual-path dispatch; spmm handles SparseAdjacency above, this wraps inputs that are already dense
            out = adj @ support
        if self.bias is not None:
            out = out + self.bias
        if self.activation is not None:
            out = self.activation(out)
        return out


class InnerProductDecoder(Module):
    """GAE decoder producing reconstruction logits ``Z Z^T``.

    ``sigmoid`` is deliberately *not* applied here: downstream losses use the
    logits directly for numerical stability, matching
    ``binary_cross_entropy_with_logits``.
    """

    def __init__(self) -> None:
        super().__init__()

    def forward(self, z: Tensor) -> Tensor:
        z = as_tensor(z)
        return z @ z.T

    def probabilities(self, z: Tensor) -> Tensor:
        """Return ``sigmoid(Z Z^T)``, the reconstructed adjacency."""
        return F.sigmoid(self.forward(z))


class MLP(Module):
    """A stack of dense layers.

    ``hidden_activation`` is applied between layers and ``output_activation``
    after the final layer.  Used for the ARGAE discriminator and for the
    fully-connected stacks analysed in Theorems 2-3.
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        hidden_activation="relu",
        output_activation=None,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if len(layer_sizes) < 2:
            raise ValueError("MLP needs at least an input and an output size")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.layers: List[Dense] = []
        last_index = len(layer_sizes) - 2
        for index, (fan_in, fan_out) in enumerate(zip(layer_sizes[:-1], layer_sizes[1:])):
            activation = output_activation if index == last_index else hidden_activation
            self.layers.append(
                Dense(fan_in, fan_out, activation=activation, bias=bias, rng=rng)
            )

    def forward(self, x) -> Tensor:
        out = as_tensor(x)
        for layer in self.layers:
            out = layer(out)
        return out
