"""Reverse-mode automatic differentiation over numpy arrays.

The :class:`Tensor` class records a dynamic computation graph as operations
are applied and computes gradients of a scalar loss with respect to every
tensor that has ``requires_grad=True`` via :meth:`Tensor.backward`.

Only the operations required by the GAE model family are implemented, but
each one supports full numpy broadcasting with correct gradient
accumulation (broadcast dimensions are summed out on the way back).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, "Tensor"]

# Grad mode is tracked per thread: a no_grad() evaluation pass on one thread
# (e.g. a metrics callback running concurrently with training) must not
# disable graph construction for every other thread, which a module-level
# boolean would.
_GRAD_STATE = threading.local()

# Sanitizer hook points (repro.analysis.sanitizers).  ``None`` when the
# sanitizers are off, which keeps the hot-path cost to one global load and
# an is-None test per operation.  The child hook sees every tensor produced
# by an autograd op; the grad hook sees every gradient accumulated during
# backward().
_CHILD_HOOK: Optional[Callable[["Tensor"], None]] = None
_GRAD_HOOK: Optional[Callable[["Tensor", np.ndarray], None]] = None


def set_sanitizer_hooks(
    child_hook: Optional[Callable[["Tensor"], None]],
    grad_hook: Optional[Callable[["Tensor", np.ndarray], None]],
) -> None:
    """Install (or, with ``None``, remove) the runtime sanitizer hooks."""
    global _CHILD_HOOK, _GRAD_HOOK
    _CHILD_HOOK = child_hook  # repro: noqa[REP102] per-process sanitizer hook slot, set once at worker start
    _GRAD_HOOK = grad_hook  # repro: noqa[REP102] per-process sanitizer hook slot, set once at worker start


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction.

    Useful for evaluation passes (metrics, cluster re-initialisation) where
    gradients are not needed, mirroring ``torch.no_grad``.  The flag is
    thread-local, so concurrent evaluation never corrupts grad state across
    threads.
    """
    previous = grad_enabled()
    _GRAD_STATE.enabled = False  # repro: noqa[REP102] thread-local grad mode, restored in finally; deterministic per worker
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return getattr(_GRAD_STATE, "enabled", True)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over broadcast dimensions so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


def as_tensor(value: ArrayLike) -> "Tensor":
    """Coerce ``value`` to a :class:`Tensor` without copying existing tensors."""
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=np.float64))


class Tensor:
    """A numpy array with reverse-mode autograd support."""

    # __weakref__ lets the sanitizers track live graph nodes in a WeakSet
    # without ever extending their lifetime.
    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name", "__weakref__")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    def release_graph(self) -> None:
        """Sever the autograd graph rooted at this tensor.

        Every ``_backward`` closure captures its output tensor, so a
        computation graph is a web of reference cycles that only the
        *cyclic* garbage collector can reclaim; until it runs, the large
        intermediate arrays (and their accumulated gradients) of past
        steps pile up.  Training loops call this after ``optimizer.step()``
        so each step's graph is freed immediately by reference counting —
        essential for minibatch loops running many steps per epoch.  Leaf
        tensors (parameters) have no parents or closure and keep their
        accumulated ``grad``.
        """
        stack: List["Tensor"] = [self]
        seen = set()
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            parents = node._parents
            node._parents = ()
            node._backward = None
            stack.extend(parents)

    # ------------------------------------------------------------------
    # graph construction helpers
    # ------------------------------------------------------------------
    def _make_child(
        self,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = grad_enabled() and any(p.requires_grad for p in parents)
        child = Tensor(data, requires_grad=requires)
        if requires:
            child._parents = tuple(parents)
            child._backward = backward
        if _CHILD_HOOK is not None:
            _CHILD_HOOK(child)
        return child

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if _GRAD_HOOK is not None:
            _GRAD_HOOK(self, grad)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor.

        If the tensor is not a scalar an explicit upstream ``grad`` of the
        same shape must be provided.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar tensor"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        # Post-order DFS with an explicit stack.  A recursive helper would
        # both hit the interpreter recursion limit on deep graphs and — being
        # a self-referencing closure — form a reference cycle that keeps the
        # whole topo list (the entire graph) alive until the cyclic GC runs.
        # Parents are pushed in reverse so the traversal (and therefore the
        # gradient accumulation order) is identical to the recursive form.
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple["Tensor", bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in reversed(node._parents):
                stack.append((parent, False))

        grads = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            node._accumulate(node_grad)
            if node._backward is None:
                continue
            parent_grads = node._backward(node_grad)
            if parent_grads is None:
                continue
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                pgrad = _unbroadcast(
                    np.asarray(pgrad, dtype=np.float64), parent.data.shape
                )
                if id(parent) in grads:
                    grads[id(parent)] = grads[id(parent)] + pgrad
                else:
                    grads[id(parent)] = pgrad

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data + other_t.data

        def backward(grad: np.ndarray):
            return grad, grad

        return self._make_child(out_data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray):
            return (-grad,)

        return self._make_child(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data - other_t.data

        def backward(grad: np.ndarray):
            return grad, -grad

        return self._make_child(out_data, (self, other_t), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data * other_t.data

        def backward(grad: np.ndarray):
            return grad * other_t.data, grad * self.data

        return self._make_child(out_data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data / other_t.data

        def backward(grad: np.ndarray):
            grad_self = grad / other_t.data
            grad_other = -grad * self.data / (other_t.data ** 2)
            return grad_self, grad_other

        return self._make_child(out_data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        exponent = float(exponent)
        out_data = self.data ** exponent

        def backward(grad: np.ndarray):
            return (grad * exponent * self.data ** (exponent - 1.0),)

        return self._make_child(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data @ other_t.data

        def backward(grad: np.ndarray):
            grad_self = grad @ other_t.data.T
            grad_other = self.data.T @ grad
            return grad_self, grad_other

        return self._make_child(out_data, (self, other_t), backward)

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def transpose(self) -> "Tensor":
        def backward(grad: np.ndarray):
            return (grad.T,)

        return self._make_child(self.data.T, (self,), backward)

    def reshape(self, *shape: int) -> "Tensor":
        original_shape = self.data.shape

        def backward(grad: np.ndarray):
            return (grad.reshape(original_shape),)

        return self._make_child(self.data.reshape(*shape), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray):
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            return (full,)

        return self._make_child(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray):
            grad = np.asarray(grad)
            if axis is None:
                return (np.broadcast_to(grad, self.data.shape).copy(),)
            if not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            return (np.broadcast_to(grad, self.data.shape).copy(),)

        return self._make_child(out_data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------------
    # element-wise non-linearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray):
            return (grad * out_data,)

        return self._make_child(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray):
            return (grad / self.data,)

        return self._make_child(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(np.float64)
        out_data = self.data * mask

        def backward(grad: np.ndarray):
            return (grad * mask,)

        return self._make_child(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad: np.ndarray):
            return (grad * out_data * (1.0 - out_data),)

        return self._make_child(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray):
            return (grad * (1.0 - out_data ** 2),)

        return self._make_child(out_data, (self,), backward)

    def softplus(self) -> "Tensor":
        """Numerically stable log(1 + exp(x))."""
        x = self.data
        out_data = np.logaddexp(0.0, x)
        sig = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))

        def backward(grad: np.ndarray):
            return (grad * sig,)

        return self._make_child(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = ((self.data >= low) & (self.data <= high)).astype(np.float64)
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray):
            return (grad * mask,)

        return self._make_child(out_data, (self,), backward)


def stack_parameters(tensors: Iterable[Tensor]) -> np.ndarray:
    """Flatten and concatenate tensor values into a single vector."""
    return np.concatenate([t.data.ravel() for t in tensors])


def stack_gradients(tensors: Iterable[Tensor]) -> np.ndarray:
    """Flatten and concatenate tensor gradients into a single vector.

    Parameters without gradients contribute zero blocks, so the result is
    always aligned with :func:`stack_parameters`.
    """
    blocks = []
    for t in tensors:
        if t.grad is None:
            blocks.append(np.zeros(t.data.size))
        else:
            blocks.append(np.asarray(t.grad).ravel())
    return np.concatenate(blocks)
