"""Module base class: parameter registration and traversal."""

from __future__ import annotations

from typing import Dict, Iterator, List

import numpy as np

from repro.nn.tensor import Tensor, stack_gradients, stack_parameters

# A Parameter is simply a Tensor with requires_grad=True; the alias makes
# intent explicit at construction sites.
Parameter = Tensor


class Module:
    """Base class for layers and models.

    Sub-modules and parameters assigned as attributes are discovered
    automatically, mirroring the ``torch.nn.Module`` contract closely enough
    for the needs of this code base.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    # parameter traversal
    # ------------------------------------------------------------------
    def parameters(self) -> List[Tensor]:
        """Return all trainable tensors reachable from this module."""
        found: List[Tensor] = []
        seen = set()
        self._collect_parameters(found, seen)
        return found

    def _collect_parameters(self, found: List[Tensor], seen: set) -> None:
        for value in self.__dict__.values():
            self._collect_from_value(value, found, seen)

    def _collect_from_value(self, value, found: List[Tensor], seen: set) -> None:
        if isinstance(value, Tensor):
            if value.requires_grad and id(value) not in seen:
                seen.add(id(value))
                found.append(value)
        elif isinstance(value, Module):
            value._collect_parameters(found, seen)
        elif isinstance(value, (list, tuple)):
            for item in value:
                self._collect_from_value(item, found, seen)
        elif isinstance(value, dict):
            for item in value.values():
                self._collect_from_value(item, found, seen)

    def named_parameters(self) -> Dict[str, Tensor]:
        """Return a flat ``{attribute_path: tensor}`` mapping.

        Underscore-prefixed attributes are private caches (e.g. a model's
        ``_last_mu`` posterior kept from the previous forward pass), not
        parameters — they are excluded so ``state_dict`` round-trips stay
        stable whether or not the module has run a forward yet.
        """
        named: Dict[str, Tensor] = {}
        self._collect_named(named, prefix="")
        return named

    def _collect_named(self, named: Dict[str, Tensor], prefix: str) -> None:
        for key, value in self.__dict__.items():
            if key.startswith("_"):
                continue
            path = f"{prefix}{key}"
            if isinstance(value, Tensor) and value.requires_grad:
                named[path] = value
            elif isinstance(value, Module):
                value._collect_named(named, prefix=f"{path}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Tensor) and item.requires_grad:
                        named[f"{path}.{index}"] = item
                    elif isinstance(item, Module):
                        item._collect_named(named, prefix=f"{path}.{index}.")

    # ------------------------------------------------------------------
    # gradient helpers
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def parameter_vector(self) -> np.ndarray:
        """Concatenate all parameter values into one flat vector."""
        return stack_parameters(self.parameters())

    def gradient_vector(self) -> np.ndarray:
        """Concatenate all parameter gradients into one flat vector."""
        return stack_gradients(self.parameters())

    def load_parameter_vector(self, vector: np.ndarray) -> None:
        """Load parameter values from a flat vector (inverse of parameter_vector)."""
        offset = 0
        for param in self.parameters():
            size = param.data.size
            param.data = vector[offset : offset + size].reshape(param.data.shape).copy()
            offset += size
        if offset != vector.size:
            raise ValueError(
                f"vector has {vector.size} entries but module holds {offset} parameters"
            )

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every named parameter's value."""
        return {name: param.data.copy() for name, param in self.named_parameters().items()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load values produced by :meth:`state_dict`.

        The state must match the module exactly: both missing and unexpected
        keys are rejected so a stale or mismatched checkpoint fails loudly
        instead of silently loading a subset of its weights.
        """
        named = self.named_parameters()
        missing = set(named) - set(state)
        if missing:
            raise KeyError(f"state dict is missing parameters: {sorted(missing)}")
        unexpected = set(state) - set(named)
        if unexpected:
            raise KeyError(
                f"state dict has unexpected parameters: {sorted(unexpected)} "
                f"(module holds: {sorted(named)})"
            )
        for name, param in named.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} vs {param.data.shape}"
                )
            param.data = value.copy()

    # ------------------------------------------------------------------
    # train / eval switches
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in self.__dict__.values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    # ------------------------------------------------------------------
    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError
