"""Span-based tracer: nested wall/CPU-timed spans with counters and attributes.

The library's hot paths (``spmm``, the clustering kernels, the Υ transform,
store reads) run millions of times across a sweep, so instrumentation must
cost *nothing* when it is off.  This module uses the same near-zero-cost
hook pattern as ``repro.nn.tensor.set_sanitizer_hooks``: one module-level
``Optional`` global, and every instrumented call site pays exactly one
global load plus an ``is None`` test before bailing out through a shared
no-op span.  Enabling tracing (``REPRO_TRACE=1`` or :func:`install_tracer`)
swaps a real :class:`Tracer` into that global.

A :class:`Span` is a context manager::

    with span("kernel.kmeans_fit", restarts=10) as s:
        ...
        s.count("iterations", n_iter)

Spans nest (the tracer keeps a stack), record monotonic wall time
(``time.perf_counter``) and process CPU time (``time.process_time``), and
serialise to plain JSON-able dicts so pool workers can ship their span
trees back to the supervisor with the trial result (see
``repro.parallel._execute_spec``).  Tracing never touches any RNG and never
feeds back into numeric state, so traced runs stay bitwise identical to
untraced runs.
"""

from __future__ import annotations

import contextlib
import time
from typing import Any, Dict, Iterator, List, Optional, Union

from repro import env as repro_env

__all__ = [
    "Span",
    "Tracer",
    "span",
    "trace_event",
    "trace_count",
    "active_tracer",
    "install_tracer",
    "uninstall_tracer",
    "tracing_enabled",
    "tracing_session",
]

Scalar = Union[int, float, str, bool, None]


def _plain(value: Any) -> Scalar:
    """Coerce an attribute value to a JSON-able scalar (numpy ints, etc.)."""
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


class Span:
    """One timed region: name, attributes, counters and child spans.

    Spans are created through :func:`span` / :meth:`Tracer.span` and used as
    context managers; entering pushes the span onto the owning tracer's
    stack (so inner ``span()`` calls nest under it), exiting records the
    elapsed wall and CPU time and pops it.
    """

    __slots__ = (
        "name",
        "attributes",
        "counters",
        "children",
        "start",
        "wall_seconds",
        "cpu_seconds",
        "status",
        "_tracer",
        "_cpu_start",
    )

    def __init__(
        self, tracer: "Tracer", name: str, attributes: Dict[str, Scalar]
    ) -> None:
        self.name = name
        self.attributes = attributes
        self.counters: Dict[str, float] = {}
        self.children: List["Span"] = []
        self.start = 0.0
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self.status = "ok"
        self._tracer = tracer
        self._cpu_start = 0.0

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start = time.perf_counter() - self._tracer.epoch
        self._cpu_start = time.process_time()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self.wall_seconds = time.perf_counter() - self._tracer.epoch - self.start
        self.cpu_seconds = time.process_time() - self._cpu_start
        if exc_type is not None:
            self.status = "error"
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return False

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes to the span (coerced to JSON-able scalars)."""
        for key, value in attributes.items():
            self.attributes[key] = _plain(value)
        return self

    def count(self, name: str, value: float = 1) -> "Span":
        """Increment a counter local to this span."""
        self.counters[name] = self.counters.get(name, 0) + value
        return self

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able representation of this span and its subtree."""
        payload: Dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "status": self.status,
        }
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        if self.counters:
            payload["counters"] = dict(self.counters)
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload


class _NoopSpan:
    """Shared do-nothing span returned by every call site while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False

    def set(self, **attributes: Any) -> "_NoopSpan":
        return self

    def count(self, name: str, value: float = 1) -> "_NoopSpan":
        return self


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects a forest of spans for one process (or one trial).

    The tracer is deliberately single-threaded — trials are single-threaded
    by construction (the parallelism unit is the process), and the
    supervisor records its spans from the main thread only.
    """

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # -- span lifecycle -------------------------------------------------
    def span(self, name: str, **attributes: Any) -> Span:
        attrs = {key: _plain(value) for key, value in attributes.items()}
        return Span(self, name, attrs)

    def _push(self, node: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.roots.append(node)
        self._stack.append(node)

    def _pop(self, node: Span) -> None:
        # Tolerate unbalanced exits (e.g. a span torn down by an exception
        # that skipped inner __exit__s): unwind to the matching entry.
        while self._stack:
            top = self._stack.pop()
            if top is node:
                break

    def record(self, name: str, seconds: float = 0.0, **attributes: Any) -> Span:
        """Append an already-finished span (retroactive, e.g. pool attempts).

        The supervisor learns an attempt's outcome only after the worker
        returns (or dies), so it records the attempt as a completed span
        with the measured duration rather than wrapping it in ``with``.
        """
        node = self.span(name, **attributes)
        node.start = time.perf_counter() - self.epoch - seconds
        node.wall_seconds = float(seconds)
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.roots.append(node)
        return node

    def count(self, name: str, value: float = 1) -> None:
        """Increment a counter on the innermost open span (or a root counter)."""
        if self._stack:
            self._stack[-1].count(name, value)
        else:
            self.record(name).count(name, value)

    # -- export ---------------------------------------------------------
    def export(self) -> List[Dict[str, Any]]:
        """The collected span forest as JSON-able dicts."""
        return [root.to_dict() for root in self.roots]


# The hot-path global: one load + is-None test per instrumented call site.
_TRACER: Optional[Tracer] = None


def span(name: str, **attributes: Any) -> Union[Span, _NoopSpan]:
    """A context-manager span on the active tracer (no-op when disabled).

    This is *the* instrumentation entry point; keep argument expressions at
    call sites cheap, because they are evaluated even when tracing is off.
    """
    tracer = _TRACER
    if tracer is None:
        return _NOOP_SPAN
    return tracer.span(name, **attributes)


def trace_event(name: str, seconds: float = 0.0, **attributes: Any) -> None:
    """Record a completed span retroactively (no-op when disabled)."""
    tracer = _TRACER
    if tracer is None:
        return
    tracer.record(name, seconds=seconds, **attributes)


def trace_count(name: str, value: float = 1) -> None:
    """Increment a counter on the innermost open span (no-op when disabled)."""
    tracer = _TRACER
    if tracer is None:
        return
    tracer.count(name, value)


def active_tracer() -> Optional[Tracer]:
    """The installed tracer, or ``None`` while tracing is disabled."""
    return _TRACER


def install_tracer(tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) a tracer as the process-wide active one."""
    global _TRACER
    if tracer is None:
        tracer = Tracer()
    _TRACER = tracer  # repro: noqa[REP102] Optional-global hook slot: each worker installs its own tracer
    return tracer


def uninstall_tracer() -> None:
    """Disable tracing: instrumented sites return to the no-op path."""
    global _TRACER
    _TRACER = None  # repro: noqa[REP102] Optional-global hook slot: each worker installs its own tracer


def tracing_enabled() -> bool:
    """Whether ``REPRO_TRACE`` asks for tracing in this process."""
    return repro_env.env_flag(repro_env.TRACE_ENV)  # repro: noqa[REP104] workers re-read inherited REPRO_TRACE by design (set before fan-out)


@contextlib.contextmanager
def tracing_session(enabled: Optional[bool] = None) -> Iterator[Optional[Tracer]]:
    """Install a fresh tracer for the duration of a block, restoring after.

    ``enabled=None`` consults ``REPRO_TRACE``; when disabled the context
    yields ``None`` and changes nothing.  Used per-trial in pool workers and
    per-sweep in the supervisor so span forests never leak across units of
    work.
    """
    if enabled is None:
        enabled = tracing_enabled()
    if not enabled:
        yield None
        return
    global _TRACER
    previous = _TRACER
    tracer = Tracer()
    _TRACER = tracer
    try:
        yield tracer
    finally:
        _TRACER = previous
