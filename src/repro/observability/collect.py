"""Per-trial telemetry capture and deterministic cross-process merging.

Pool workers cannot share a tracer with the supervisor, so each trial
captures its own span forest and metrics snapshot
(:func:`trial_telemetry`, used by ``repro.parallel._execute_spec``) and
ships it back *inside* the trial result (``RunResult.extra['telemetry']``).
The supervisor then assembles the sweep-level view with
:func:`merge_sweep_telemetry` — trials ordered by store key, never by pool
arrival order, so the merged document is as reproducible as the trials
themselves (modulo the timings it exists to record).
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.observability import metrics as _metrics
from repro.observability import tracer as _tracer
from repro.observability.exporters import TRACE_SCHEMA

__all__ = [
    "TrialTelemetry",
    "trial_telemetry",
    "telemetry_wanted",
    "install_from_env",
    "merge_sweep_telemetry",
]


class TrialTelemetry:
    """The tracer/registry pair capturing one unit of work."""

    def __init__(
        self,
        tracer: Optional[_tracer.Tracer],
        registry: Optional[_metrics.MetricsRegistry],
    ) -> None:
        self.tracer = tracer
        self.metrics = registry

    def export(self) -> Dict[str, Any]:
        """JSON-able payload shipped back with the trial result."""
        return {
            "spans": self.tracer.export() if self.tracer is not None else [],
            "metrics": self.metrics.snapshot() if self.metrics is not None else None,
        }


def telemetry_wanted() -> bool:
    """Whether either ``REPRO_TRACE`` or ``REPRO_METRICS`` is enabled."""
    return _tracer.tracing_enabled() or _metrics.metrics_enabled()


def install_from_env() -> None:
    """Arm tracing/metrics process-wide when the env flags ask for it.

    Idempotent, and never *resets* an already-installed collector — mirrors
    ``repro.analysis.sanitizers.install_from_env``, which pool workers call
    on every trial.
    """
    if _tracer.tracing_enabled() and _tracer.active_tracer() is None:
        _tracer.install_tracer()
    if _metrics.metrics_enabled() and _metrics.active_metrics() is None:
        _metrics.install_metrics()


@contextlib.contextmanager
def trial_telemetry(enabled: Optional[bool] = None) -> Iterator[Optional[TrialTelemetry]]:
    """Capture one trial with a *fresh* tracer and metrics registry.

    Yields ``None`` when both flags are off.  Previous collectors are
    restored on exit, so a serial (in-process) trial does not swallow the
    supervisor's own spans, and a pool worker running many trials never
    leaks spans from one trial into the next.
    """
    trace_on = _tracer.tracing_enabled() if enabled is None else enabled
    metrics_on = _metrics.metrics_enabled() if enabled is None else enabled
    if not (trace_on or metrics_on):
        yield None
        return
    previous_tracer = _tracer.active_tracer()
    previous_metrics = _metrics.active_metrics()
    tracer = _tracer.install_tracer() if trace_on else None
    if not trace_on:
        _tracer.uninstall_tracer()
    registry = _metrics.install_metrics() if metrics_on else None
    if not metrics_on:
        _metrics.uninstall_metrics()
    try:
        yield TrialTelemetry(tracer, registry)
    finally:
        if previous_tracer is None:
            _tracer.uninstall_tracer()
        else:
            _tracer.install_tracer(previous_tracer)
        if previous_metrics is None:
            _metrics.uninstall_metrics()
        else:
            _metrics.install_metrics(previous_metrics)


def merge_sweep_telemetry(
    trials: List[Tuple[str, int, Optional[Dict[str, Any]]]],
    supervisor: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Merge per-trial telemetry payloads into one sweep-level document.

    ``trials`` is ``(trial_key, spec_index, payload)`` triples; payloads may
    be ``None`` for trials that failed before exporting.  Ordering is by
    ``(trial_key, spec_index)`` — deterministic for any pool width — and the
    sweep-level ``metrics`` snapshot folds every trial's registry plus the
    supervisor's.
    """
    ordered = sorted(trials, key=lambda entry: (entry[0], entry[1]))
    trial_docs: List[Dict[str, Any]] = []
    metric_sources: List[Tuple[str, Dict[str, Any]]] = []
    for key, index, payload in ordered:
        payload = payload or {}
        doc: Dict[str, Any] = {
            "key": key,
            "index": index,
            "spans": payload.get("spans", []),
        }
        snapshot = payload.get("metrics")
        if snapshot:
            doc["metrics"] = snapshot
            metric_sources.append((key, snapshot))
        trial_docs.append(doc)
    document: Dict[str, Any] = {"schema": TRACE_SCHEMA, "trials": trial_docs}
    if supervisor:
        document["supervisor"] = supervisor
        snapshot = supervisor.get("metrics")
        if snapshot:
            metric_sources.append(("", snapshot))
    if metric_sources:
        document["metrics"] = _metrics.merge_metrics(metric_sources)
    return document
