"""Process-wide metrics registry: counters, gauges and histograms.

Gated by ``REPRO_METRICS`` through the same ``Optional``-global hook
pattern as the tracer: while disabled, :func:`metric_inc` /
:func:`metric_set` / :func:`metric_observe` cost one global load and an
``is None`` test.  Enabled, they update a :class:`MetricsRegistry` that
snapshots to plain dicts (shipped from pool workers with trial results) and
merges deterministically — counters and histograms are order-independent
sums/extrema, and gauges resolve by sorted trial key, never by arrival
order, so a traced sweep's merged telemetry is itself reproducible.

Histograms deliberately store moments (count/sum/min/max), not samples:
a sweep's worth of per-batch observations must not grow memory unboundedly.

This module also owns the **unified benchmark report schema**
(:data:`METRICS_SCHEMA`, :func:`metrics_report`): every ``benchmarks/``
script emits ``{"schema": ..., "benchmark": ..., "context": ...,
"results": ...}`` so a regression harness can diff timing JSON across runs
and benchmarks without per-script parsers.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro import env as repro_env

__all__ = [
    "MetricsRegistry",
    "metric_inc",
    "metric_set",
    "metric_observe",
    "active_metrics",
    "install_metrics",
    "uninstall_metrics",
    "metrics_enabled",
    "merge_metrics",
    "METRICS_SCHEMA",
    "metrics_report",
]

#: Schema tag stamped on every benchmark timing-JSON and telemetry export.
METRICS_SCHEMA = "repro-metrics/1"


class MetricsRegistry:
    """Counters, gauges and histograms for one process (or one trial)."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Dict[str, float]] = {}

    def inc(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def set(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        value = float(value)
        hist = self.histograms.get(name)
        if hist is None:
            self.histograms[name] = {"count": 1, "sum": value, "min": value, "max": value}
            return
        hist["count"] += 1
        hist["sum"] += value
        if value < hist["min"]:
            hist["min"] = value
        if value > hist["max"]:
            hist["max"] = value

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able snapshot (sorted keys, so equal registries serialise equal)."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: dict(self.histograms[k]) for k in sorted(self.histograms)
            },
        }


# The hot-path global: one load + is-None test per instrumented call site.
_METRICS: Optional[MetricsRegistry] = None


def metric_inc(name: str, value: float = 1) -> None:
    """Increment a counter (no-op while metrics are disabled)."""
    registry = _METRICS
    if registry is None:
        return
    registry.inc(name, value)


def metric_set(name: str, value: float) -> None:
    """Set a gauge (no-op while metrics are disabled)."""
    registry = _METRICS
    if registry is None:
        return
    registry.set(name, value)


def metric_observe(name: str, value: float) -> None:
    """Record a histogram observation (no-op while metrics are disabled)."""
    registry = _METRICS
    if registry is None:
        return
    registry.observe(name, value)


def active_metrics() -> Optional[MetricsRegistry]:
    """The installed registry, or ``None`` while metrics are disabled."""
    return _METRICS


def install_metrics(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install (and return) a registry as the process-wide active one."""
    global _METRICS
    if registry is None:
        registry = MetricsRegistry()
    _METRICS = registry  # repro: noqa[REP102] Optional-global hook slot: each worker installs its own registry
    return registry


def uninstall_metrics() -> None:
    """Disable metrics: instrumented sites return to the no-op path."""
    global _METRICS
    _METRICS = None  # repro: noqa[REP102] Optional-global hook slot: each worker installs its own registry


def metrics_enabled() -> bool:
    """Whether ``REPRO_METRICS`` asks for metric collection in this process."""
    return repro_env.env_flag(repro_env.METRICS_ENV)  # repro: noqa[REP104] workers re-read inherited REPRO_METRICS by design (set before fan-out)


def merge_metrics(snapshots: Iterable[Tuple[str, Dict[str, Any]]]) -> Dict[str, Any]:
    """Deterministically merge per-trial snapshots, ordered by trial key.

    ``snapshots`` is ``(trial_key, snapshot)`` pairs; merging sums counters,
    folds histogram moments, and lets the *last sorted key* win each gauge —
    a convention, but a stable one, independent of pool arrival order.
    """
    merged = MetricsRegistry()
    for _, snap in sorted(snapshots, key=lambda pair: pair[0]):
        if not snap:
            continue
        for name, value in snap.get("counters", {}).items():
            merged.inc(name, value)
        for name, value in snap.get("gauges", {}).items():
            merged.set(name, value)
        for name, hist in snap.get("histograms", {}).items():
            ours = merged.histograms.get(name)
            if ours is None:
                merged.histograms[name] = dict(hist)
            else:
                ours["count"] += hist["count"]
                ours["sum"] += hist["sum"]
                ours["min"] = min(ours["min"], hist["min"])
                ours["max"] = max(ours["max"], hist["max"])
    return merged.snapshot()


def metrics_report(
    benchmark: str,
    results: Any,
    repeats: Optional[int] = None,
    **context: Any,
) -> Dict[str, Any]:
    """The unified timing-JSON envelope emitted by every benchmark script.

    ``results`` keeps each benchmark's native per-workload rows; the
    envelope (schema tag, benchmark name, repeat count, free-form context)
    is what regression tooling keys on.  CI artifact names are unchanged —
    only the JSON inside them gained a common shape.
    """
    report: Dict[str, Any] = {
        "schema": METRICS_SCHEMA,
        "benchmark": str(benchmark),
        "context": {k: context[k] for k in sorted(context)},
        "results": results,
    }
    if repeats is not None:
        report["repeats"] = int(repeats)
    return report
