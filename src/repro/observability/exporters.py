"""Telemetry exporters: Chrome trace-event JSON and JSONL event streams.

The merged telemetry of a sweep (see ``repro.parallel.run_sweep``) is a
plain dict::

    {"schema": "repro-trace/1",
     "trials": [{"key": ..., "index": ..., "spans": [...], "metrics": {...}}],
     "supervisor": {"spans": [...], "metrics": {...}},
     "metrics": {...merged snapshot...}}

:func:`chrome_trace` flattens it into the Chrome trace-event format
(``{"traceEvents": [...]}``, ``"X"`` complete events with microsecond
timestamps) that https://ui.perfetto.dev loads directly — each trial gets
its own ``pid`` lane named by its store key, the supervisor gets lane 0.
:func:`jsonl_events` is the line-oriented alternative for log shippers.
:func:`summarize_trace` aggregates either form into the per-stage
time/alloc table behind ``repro-run trace-summary``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "TRACE_SCHEMA",
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_events",
    "write_jsonl",
    "load_trace_events",
    "summarize_trace",
    "format_trace_summary",
    "store_trace_path",
]

#: Schema tag stamped on merged sweep telemetry.
TRACE_SCHEMA = "repro-trace/1"


def _span_events(
    node: Dict[str, Any], pid: int, events: List[Dict[str, Any]]
) -> None:
    args: Dict[str, Any] = {}
    for key, value in node.get("attributes", {}).items():
        args[key] = value
    for key, value in node.get("counters", {}).items():
        args[key] = value
    cpu = node.get("cpu_seconds")
    if cpu:
        args["cpu_ms"] = round(cpu * 1e3, 3)
    if node.get("status", "ok") != "ok":
        args["status"] = node["status"]
    name = str(node.get("name", "span"))
    events.append(
        {
            "name": name,
            "cat": name.split(".", 1)[0],
            "ph": "X",
            "ts": round(float(node.get("start", 0.0)) * 1e6, 1),
            "dur": round(float(node.get("wall_seconds", 0.0)) * 1e6, 1),
            "pid": pid,
            "tid": 0,
            "args": args,
        }
    )
    for child in node.get("children", []):
        _span_events(child, pid, events)


def _lanes(telemetry: Dict[str, Any]) -> Iterator[Tuple[int, str, Dict[str, Any]]]:
    """(pid, label, unit) lanes of a telemetry dict, supervisor first."""
    supervisor = telemetry.get("supervisor")
    if supervisor:
        yield 0, "supervisor", supervisor
    for lane, trial in enumerate(telemetry.get("trials", []), start=1):
        label = str(trial.get("key", lane))[:16]
        yield lane, f"trial {label}", trial


def chrome_trace(telemetry: Dict[str, Any]) -> Dict[str, Any]:
    """The telemetry as a Perfetto-loadable Chrome trace-event document."""
    events: List[Dict[str, Any]] = []
    for pid, label, unit in _lanes(telemetry):
        events.append(
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0, "args": {"name": label}}
        )
        for node in unit.get("spans", []):
            _span_events(node, pid, events)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": telemetry.get("schema", TRACE_SCHEMA)},
    }


def write_chrome_trace(path: str, telemetry: Dict[str, Any]) -> str:
    """Write the Chrome trace JSON for ``telemetry`` to ``path``."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(telemetry), handle)
    return path


def jsonl_events(telemetry: Dict[str, Any]) -> Iterator[str]:
    """One JSON line per span event plus one ``metrics`` line per unit."""
    for _, label, unit in _lanes(telemetry):
        events: List[Dict[str, Any]] = []
        for node in unit.get("spans", []):
            _flatten_spans(node, label, events)
        for event in events:
            yield json.dumps(event, sort_keys=True)
        metrics = unit.get("metrics")
        if metrics:
            yield json.dumps({"event": "metrics", "unit": label, "metrics": metrics}, sort_keys=True)


def _flatten_spans(
    node: Dict[str, Any], unit: str, events: List[Dict[str, Any]], depth: int = 0
) -> None:
    record = {
        "event": "span",
        "unit": unit,
        "depth": depth,
        "name": node.get("name"),
        "start": node.get("start"),
        "wall_seconds": node.get("wall_seconds"),
        "cpu_seconds": node.get("cpu_seconds"),
        "status": node.get("status", "ok"),
    }
    if node.get("attributes"):
        record["attributes"] = node["attributes"]
    if node.get("counters"):
        record["counters"] = node["counters"]
    events.append(record)
    for child in node.get("children", []):
        _flatten_spans(child, unit, events, depth + 1)


def write_jsonl(path: str, telemetry: Dict[str, Any]) -> str:
    """Write the JSONL event stream for ``telemetry`` to ``path``."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for line in jsonl_events(telemetry):
            handle.write(line + "\n")
    return path


def load_trace_events(path: str) -> List[Dict[str, Any]]:
    """Load the ``traceEvents`` list from a Chrome trace JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if isinstance(document, dict):
        events = document.get("traceEvents", [])
    else:
        events = document  # bare-array form is also valid Chrome trace
    return [event for event in events if isinstance(event, dict)]


def summarize_trace(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Aggregate trace events per span name: calls, wall, CPU, peak alloc.

    Returns rows sorted by total wall time (descending), which is the
    per-stage breakdown ``repro-run trace-summary`` prints.
    """
    rows: Dict[str, Dict[str, Any]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        name = str(event.get("name", "span"))
        row = rows.setdefault(
            name,
            {"name": name, "calls": 0, "wall_ms": 0.0, "cpu_ms": 0.0, "peak_alloc_kb": 0.0},
        )
        row["calls"] += 1
        row["wall_ms"] += float(event.get("dur", 0.0)) / 1e3
        args = event.get("args", {})
        row["cpu_ms"] += float(args.get("cpu_ms", 0.0))
        alloc = args.get("peak_alloc_bytes")
        if alloc is not None:
            row["peak_alloc_kb"] = max(row["peak_alloc_kb"], float(alloc) / 1024.0)
    return sorted(rows.values(), key=lambda row: (-row["wall_ms"], row["name"]))


def format_trace_summary(rows: List[Dict[str, Any]]) -> str:
    """Render :func:`summarize_trace` rows as an aligned text table."""
    header = f"{'span':<36} {'calls':>7} {'wall ms':>12} {'cpu ms':>12} {'peak alloc kb':>14}"
    lines = [header, "-" * len(header)]
    for row in rows:
        alloc = f"{row['peak_alloc_kb']:.1f}" if row["peak_alloc_kb"] else "-"
        lines.append(
            f"{row['name']:<36} {row['calls']:>7d} {row['wall_ms']:>12.2f} "
            f"{row['cpu_ms']:>12.2f} {alloc:>14}"
        )
    return "\n".join(lines)


def store_trace_path(store_root: str, key: str) -> str:
    """Where a sweep's merged Chrome trace lives inside the artifact store."""
    return os.path.join(store_root, "traces", f"{key[:16]}.trace.json")
