"""repro.observability — structured tracing, metrics and profiling.

The telemetry substrate of the library, gated by ``REPRO_TRACE`` /
``REPRO_METRICS`` (see :mod:`repro.env`):

* :mod:`~repro.observability.tracer` — nested context-manager spans with
  monotonic wall/CPU timing, threaded through the pipeline stages, trainer
  phases, kernels, store operations and the resilience supervisor.  One
  ``None`` check per call site while disabled.
* :mod:`~repro.observability.metrics` — counters/gauges/histograms with
  deterministic merging, plus the unified benchmark report schema.
* :mod:`~repro.observability.collect` — per-trial capture in pool workers
  and the sorted-by-trial-key sweep merge.
* :mod:`~repro.observability.exporters` — Chrome trace-event JSON (loadable
  in Perfetto), JSONL event streams, and the ``trace-summary`` breakdown.
* :mod:`~repro.observability.log` — the ``repro`` logger hierarchy that
  library code uses instead of ``print()`` (enforced by lint rule REP008).
"""

from repro.observability.collect import (
    TrialTelemetry,
    install_from_env,
    merge_sweep_telemetry,
    telemetry_wanted,
    trial_telemetry,
)
from repro.observability.exporters import (
    TRACE_SCHEMA,
    chrome_trace,
    format_trace_summary,
    jsonl_events,
    load_trace_events,
    store_trace_path,
    summarize_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.observability.log import get_logger
from repro.observability.metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    active_metrics,
    install_metrics,
    merge_metrics,
    metric_inc,
    metric_observe,
    metric_set,
    metrics_enabled,
    metrics_report,
    uninstall_metrics,
)
from repro.observability.tracer import (
    Span,
    Tracer,
    active_tracer,
    install_tracer,
    span,
    trace_count,
    trace_event,
    tracing_enabled,
    tracing_session,
    uninstall_tracer,
)

__all__ = [
    "Span",
    "Tracer",
    "span",
    "trace_event",
    "trace_count",
    "active_tracer",
    "install_tracer",
    "uninstall_tracer",
    "tracing_enabled",
    "tracing_session",
    "MetricsRegistry",
    "metric_inc",
    "metric_set",
    "metric_observe",
    "active_metrics",
    "install_metrics",
    "uninstall_metrics",
    "metrics_enabled",
    "merge_metrics",
    "METRICS_SCHEMA",
    "metrics_report",
    "TrialTelemetry",
    "trial_telemetry",
    "telemetry_wanted",
    "install_from_env",
    "merge_sweep_telemetry",
    "TRACE_SCHEMA",
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_events",
    "write_jsonl",
    "load_trace_events",
    "summarize_trace",
    "format_trace_summary",
    "store_trace_path",
    "get_logger",
]
