"""The library logger: where residual ``print()`` output was routed.

REP008 bans ``print()`` in library code (``src/repro/``, CLIs exempt) —
progress lines from pretraining loops and the ``ProgressLogger`` callback
now go through :func:`get_logger` instead.  The logger writes plain
messages to stdout at INFO level by default, so ``verbose=True`` output
looks exactly as before, but a host application can reconfigure, silence or
redirect the ``repro`` logger hierarchy with the standard ``logging`` API —
something ``print()`` never allowed.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = ["get_logger"]

_CONFIGURED = False


def _configure_root() -> None:
    global _CONFIGURED
    if _CONFIGURED:
        return
    root = logging.getLogger("repro")
    if not root.handlers:
        handler = logging.StreamHandler(sys.stdout)
        handler.setFormatter(logging.Formatter("%(message)s"))
        root.addHandler(handler)
        root.setLevel(logging.INFO)
        root.propagate = False
    _CONFIGURED = True  # repro: noqa[REP102] idempotent per-process logging setup


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``).

    First use attaches a plain-message stdout handler to the ``repro`` root
    logger unless the host application configured one already.
    """
    _configure_root()
    if not name:
        return logging.getLogger("repro")
    if name.startswith("repro"):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")
