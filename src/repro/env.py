"""The single accessor for every ``REPRO_*`` environment variable.

Configuration through the environment is how sweeps reconfigure pool
workers (children inherit the parent environment), so these variables are
part of the library's public surface.  Before this module existed each
subsystem read ``os.environ`` on its own, which meant there was no one
place listing what can be configured, no consistent parsing/validation,
and no way for tooling to check that a new variable was documented.

Now every variable must be declared here (:data:`ENV_VARS`), every read
goes through the typed getters below, and the REP005 lint rule rejects
``os.environ`` reads anywhere else in the library.  ``describe_env()``
renders the registry as documentation rows; the README table is generated
from it.

This module is intentionally dependency-free (stdlib only) so anything —
including :mod:`repro.errors` consumers and the linter itself — can import
it without cycles.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Union

from repro.errors import ConfigError

__all__ = [
    "EnvVar",
    "ENV_VARS",
    "STORE_DIR_ENV",
    "DATASET_CACHE_SIZE_ENV",
    "SPARSE_NODE_THRESHOLD_ENV",
    "SPARSE_DENSITY_THRESHOLD_ENV",
    "BENCH_JOBS_ENV",
    "SANITIZE_ENV",
    "TRIAL_TIMEOUT_ENV",
    "MAX_RETRIES_ENV",
    "FAULTS_ENV",
    "STORE_MAX_BYTES_ENV",
    "TRACE_ENV",
    "METRICS_ENV",
    "env_raw",
    "env_str",
    "env_int",
    "env_float",
    "env_flag",
    "env_jobs",
    "env_override",
    "describe_env",
]


@dataclass(frozen=True)
class EnvVar:
    """Declaration of one supported ``REPRO_*`` environment variable."""

    name: str
    kind: str
    default: str
    description: str


#: Registry of every supported variable, in documentation order.  Adding a
#: variable here (and nowhere else) is what makes a new ``REPRO_*`` read
#: pass REP005 — see CONTRIBUTING.md.
ENV_VARS: Dict[str, EnvVar] = {}


def _register(name: str, kind: str, default: str, description: str) -> str:
    ENV_VARS[name] = EnvVar(name=name, kind=kind, default=default, description=description)
    return name


STORE_DIR_ENV = _register(
    "REPRO_STORE_DIR",
    "path",
    "(unset: warm starts off)",
    "Root directory of the warm-start artifact store; unset disables "
    "checkpoint reuse entirely.",
)
DATASET_CACHE_SIZE_ENV = _register(
    "REPRO_DATASET_CACHE_SIZE",
    "int >= 0",
    "8",
    "Max entries of the per-process dataset LRU used by pool workers; "
    "0 disables caching.",
)
SPARSE_NODE_THRESHOLD_ENV = _register(
    "REPRO_SPARSE_NODE_THRESHOLD",
    "int",
    "256",
    "Minimum node count before a dense adjacency is auto-promoted to the "
    "CSR backend.",
)
SPARSE_DENSITY_THRESHOLD_ENV = _register(
    "REPRO_SPARSE_DENSITY_THRESHOLD",
    "float",
    "0.25",
    "Maximum edge density at which a dense adjacency is auto-promoted to "
    "the CSR backend.",
)
BENCH_JOBS_ENV = _register(
    "REPRO_BENCH_JOBS",
    "int >= 1 or 'auto'",
    "1",
    "Process-pool width for the multi-seed table benchmarks; 'auto' uses "
    "every core.  Per-seed results are bitwise identical for any value.",
)
SANITIZE_ENV = _register(
    "REPRO_SANITIZE",
    "flag (1/true/on)",
    "(unset: sanitizers off)",
    "Enables the runtime sanitizers (NaN/Inf tensor guard, autograd leak "
    "detector, pool-worker RNG isolation) — see repro.analysis.sanitizers.",
)
TRIAL_TIMEOUT_ENV = _register(
    "REPRO_TRIAL_TIMEOUT",
    "float seconds > 0",
    "(unset: no timeout)",
    "Per-attempt wall-clock budget of a pooled trial; a trial running "
    "longer is killed (worker terminated, pool respawned) and retried or "
    "quarantined.  Enforced for jobs > 1 only.",
)
MAX_RETRIES_ENV = _register(
    "REPRO_MAX_RETRIES",
    "int >= 0",
    "0",
    "Retries granted to a failed/timed-out/crashed trial before it is "
    "quarantined (max attempts = retries + 1), with exponential backoff "
    "and deterministic key-derived jitter between attempts.",
)
FAULTS_ENV = _register(
    "REPRO_FAULTS",
    "fault plan",
    "(unset: no faults)",
    "Deterministic fault-injection plan for chaos testing, e.g. "
    "'worker_crash:p=0.3:seed=7,store_corrupt' — see "
    "repro.resilience.faults.  Never set in production.",
)
STORE_MAX_BYTES_ENV = _register(
    "REPRO_STORE_MAX_BYTES",
    "int >= 0",
    "0 (unlimited)",
    "Size budget of the artifact store; journaled sweeps and "
    "'repro-run store-gc' evict least-recently-used artifacts (by mtime) "
    "until the store fits.  0 disables eviction.",
)
TRACE_ENV = _register(
    "REPRO_TRACE",
    "flag (1/true/on)",
    "(unset: tracing off)",
    "Enables the span tracer (repro.observability): pipeline stages, "
    "trainer phases, kernel and store operations are timed; pool workers "
    "ship their span trees back with trial results and 'repro-run --trace' "
    "exports a merged Chrome trace.  Disabled, every instrumented site "
    "costs one None check.",
)
METRICS_ENV = _register(
    "REPRO_METRICS",
    "flag (1/true/on)",
    "(unset: metrics off)",
    "Enables the metrics registry (repro.observability): counters, gauges "
    "and histograms (store hits/misses, retries, kernel call counts) "
    "snapshotted per trial and merged deterministically across a sweep.",
)


def _check_registered(name: str) -> EnvVar:
    try:
        return ENV_VARS[name]
    except KeyError:
        raise ConfigError(
            f"unregistered environment variable {name!r}; declare it in "
            f"repro.env.ENV_VARS (known: {', '.join(sorted(ENV_VARS))})"
        ) from None


def env_raw(name: str) -> Optional[str]:
    """The raw value of a *registered* variable (``None`` when unset).

    This is the only place in the library that reads ``os.environ``; the
    REP005 lint rule keeps it that way.  The value is read per call, never
    cached, so reconfiguring a worker between trials takes effect
    immediately.
    """
    _check_registered(name)
    value = os.environ.get(name)
    return value if value else None


def env_str(name: str, default: Optional[str] = None) -> Optional[str]:
    """String value of ``name``, or ``default`` when unset/empty."""
    value = env_raw(name)
    return default if value is None else value


def env_int(name: str, default: int) -> int:
    """Integer value of ``name`` (``default`` when unset; typed error otherwise)."""
    value = env_raw(name)
    if value is None:
        return int(default)
    try:
        return int(value)
    except ValueError:
        raise ConfigError(f"{name} must be an integer, got {value!r}") from None


def env_float(name: str, default: float) -> float:
    """Float value of ``name`` (``default`` when unset; typed error otherwise)."""
    value = env_raw(name)
    if value is None:
        return float(default)
    try:
        return float(value)
    except ValueError:
        raise ConfigError(f"{name} must be a float, got {value!r}") from None


def env_flag(name: str) -> bool:
    """Boolean flag: ``1``/``true``/``yes``/``on`` (case-insensitive) enable."""
    value = env_raw(name)
    if value is None:
        return False
    return value.strip().lower() in {"1", "true", "yes", "on"}


def env_jobs(name: str, default: Union[int, str] = 1) -> Union[int, str]:
    """A jobs-count value: a positive integer or the literal ``'auto'``."""
    value = env_raw(name)
    if value is None:
        return default
    if value == "auto":
        return "auto"
    try:
        jobs = int(value)
    except ValueError:
        raise ConfigError(f"{name} must be a positive integer or 'auto', got {value!r}") from None
    if jobs < 1:
        raise ConfigError(f"{name} must be >= 1 or 'auto', got {jobs}")
    return jobs


@contextlib.contextmanager
def env_override(name: str, value: Optional[str]) -> Iterator[Optional[str]]:
    """Temporarily set a registered variable (``None`` value = no-op).

    Setting the variable in the parent before a process pool spins up is
    what propagates configuration to every worker; this context restores
    the previous value (or unsets) on exit.
    """
    _check_registered(name)
    if value is None:
        yield None
        return
    value = str(value)
    previous = os.environ.get(name)
    os.environ[name] = value
    try:
        yield value
    finally:
        if previous is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = previous


def describe_env() -> List[Dict[str, str]]:
    """Documentation rows (name/type/default/description) for every variable.

    The README's configuration table is generated from this, so registry
    and documentation cannot drift apart.
    """
    return [
        {
            "name": var.name,
            "kind": var.kind,
            "default": var.default,
            "description": var.description,
        }
        for var in ENV_VARS.values()
    ]
