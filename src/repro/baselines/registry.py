"""Registry of non-GAE clustering baselines (Table 17)."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.baselines.agc import AGC
from repro.baselines.age import AGE
from repro.baselines.mgae import MGAE
from repro.baselines.tadw import TADW

BASELINE_BUILDERS: Dict[str, Callable] = {
    "tadw": TADW,
    "mgae": MGAE,
    "agc": AGC,
    "age": AGE,
}


def available_baselines() -> List[str]:
    """Names of all registered baselines."""
    return sorted(BASELINE_BUILDERS)


def build_baseline(name: str, num_clusters: int, seed: int = 0, **kwargs):
    """Instantiate a registered baseline."""
    if name not in BASELINE_BUILDERS:
        raise KeyError(
            f"unknown baseline {name!r}; available: {', '.join(available_baselines())}"
        )
    return BASELINE_BUILDERS[name](num_clusters=num_clusters, seed=seed, **kwargs)
