"""Registry of non-GAE clustering baselines (Table 17).

Backed by the generic :class:`repro.api.registry.Registry`; the legacy
``BASELINE_BUILDERS`` mapping is kept as a view over it.
"""

from __future__ import annotations

from typing import List

from repro.api.registry import Registry
from repro.baselines.agc import AGC
from repro.baselines.age import AGE
from repro.baselines.mgae import MGAE
from repro.baselines.tadw import TADW

#: the unified baseline registry (name → baseline class).
BASELINES = Registry("baseline")
BASELINES.add("tadw", TADW, description="text-associated DeepWalk (matrix factorisation)")
BASELINES.add("mgae", MGAE, description="marginalised GAE + spectral clustering")
BASELINES.add("agc", AGC, description="adaptive graph convolution")
BASELINES.add("age", AGE, description="adaptive graph encoder")

#: deprecated alias — a Mapping view over :data:`BASELINES`.
BASELINE_BUILDERS = BASELINES


def available_baselines() -> List[str]:
    """Names of all registered baselines."""
    return sorted(BASELINES.names())


def build_baseline(name: str, num_clusters: int, seed: int = 0, **kwargs):
    """Instantiate a registered baseline."""
    return BASELINES.build(name, num_clusters=num_clusters, seed=seed, **kwargs)
