"""AGC: Attributed Graph Clustering via Adaptive Graph Convolution (Zhang et al., 2019).

AGC applies a k-order low-pass graph filter ``(I - L_sym/2)^k`` to the node
attributes and clusters the filtered features with spectral clustering on
their linear-kernel similarity.  The filter order is selected adaptively by
monitoring the intra-cluster variance of the resulting partition.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.clustering.kmeans import KMeans
from repro.errors import InternalInvariantError
from repro.graph.graph import AttributedGraph
from repro.graph.laplacian import normalize_adjacency


class AGC:
    """Adaptive Graph Convolution clustering baseline."""

    def __init__(
        self,
        num_clusters: int,
        max_order: int = 6,
        seed: int = 0,
    ) -> None:
        self.num_clusters = int(num_clusters)
        self.max_order = int(max_order)
        self.seed = int(seed)
        self.selected_order_: Optional[int] = None
        self.filtered_features_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @staticmethod
    def _intra_cluster_variance(features: np.ndarray, labels: np.ndarray) -> float:
        total = 0.0
        for cluster in np.unique(labels):
            members = features[labels == cluster]
            if members.shape[0] > 1:
                total += float(np.sum((members - members.mean(axis=0)) ** 2))
        return total / features.shape[0]

    def _spectral_labels(self, features: np.ndarray) -> np.ndarray:
        similarity = features @ features.T
        similarity = (np.abs(similarity) + np.abs(similarity.T)) / 2.0
        eigenvalues, eigenvectors = np.linalg.eigh(similarity)
        spectral = eigenvectors[:, -self.num_clusters :]
        kmeans = KMeans(self.num_clusters, num_init=10, seed=self.seed)
        return kmeans.fit_predict(spectral)

    def fit_predict(self, graph: AttributedGraph) -> np.ndarray:
        """Adaptively choose the filter order and return cluster labels."""
        adj_norm = normalize_adjacency(graph.adjacency, self_loops=True)
        # Low-pass filter G = I - L_sym / 2 = (I + A_norm) / 2.
        filter_matrix = (np.eye(graph.num_nodes) + adj_norm) / 2.0
        features = graph.row_normalized_features()
        best_labels: Optional[np.ndarray] = None
        best_variance = np.inf
        previous_variance = np.inf
        filtered = features
        for order in range(1, self.max_order + 1):
            filtered = filter_matrix @ filtered
            labels = self._spectral_labels(filtered)
            variance = self._intra_cluster_variance(filtered, labels)
            if variance < best_variance:
                best_variance = variance
                best_labels = labels
                self.selected_order_ = order
                self.filtered_features_ = filtered
            # Stop when the intra-cluster variance starts increasing.
            if variance > previous_variance:
                break
            previous_variance = variance
        if best_labels is None:
            raise InternalInvariantError(
                "AGC order search finished without selecting labels; "
                "max_order must be >= 1 and the first iteration always sets "
                "a candidate"
            )
        return best_labels
