"""AGE: Adaptive Graph Encoder (Cui et al., 2020) — simplified.

AGE decouples filtering from encoding: attributes are smoothed with a
Laplacian low-pass filter, then an embedding is refined with a
pseudo-supervised objective that pulls together high-similarity pairs and
pushes apart low-similarity pairs.  This compact variant performs the
Laplacian smoothing and a few rounds of similarity-threshold-guided linear
re-embedding (power-iteration style), then clusters with k-means — enough to
reproduce AGE's qualitative behaviour as the strongest non-GAE baseline of
Table 17.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.clustering.kmeans import KMeans
from repro.graph.graph import AttributedGraph
from repro.graph.laplacian import normalize_adjacency


class AGE:
    """Adaptive Graph Encoder clustering baseline (simplified)."""

    def __init__(
        self,
        num_clusters: int,
        smoothing_order: int = 4,
        embedding_dim: int = 32,
        refine_rounds: int = 3,
        positive_quantile: float = 0.98,
        seed: int = 0,
    ) -> None:
        self.num_clusters = int(num_clusters)
        self.smoothing_order = int(smoothing_order)
        self.embedding_dim = int(embedding_dim)
        self.refine_rounds = int(refine_rounds)
        self.positive_quantile = float(positive_quantile)
        self.seed = int(seed)
        self.embedding_: Optional[np.ndarray] = None

    def _smooth(self, graph: AttributedGraph) -> np.ndarray:
        adj_norm = normalize_adjacency(graph.adjacency, self_loops=True)
        filter_matrix = (np.eye(graph.num_nodes) + adj_norm) / 2.0
        smoothed = graph.row_normalized_features()
        for _ in range(self.smoothing_order):
            smoothed = filter_matrix @ smoothed
        return smoothed

    def _reduce(self, features: np.ndarray) -> np.ndarray:
        rank = min(self.embedding_dim, min(features.shape) - 1)
        u, s, _ = np.linalg.svd(features, full_matrices=False)
        return u[:, :rank] * s[:rank]

    def fit(self, graph: AttributedGraph) -> "AGE":
        embedding = self._reduce(self._smooth(graph))
        for _ in range(self.refine_rounds):
            normalized = embedding / np.maximum(
                np.linalg.norm(embedding, axis=1, keepdims=True), 1e-12
            )
            similarity = normalized @ normalized.T
            threshold = np.quantile(similarity, self.positive_quantile)
            # Pseudo-supervised graph: link high-similarity pairs.
            pseudo_graph = (similarity >= threshold).astype(np.float64)
            np.fill_diagonal(pseudo_graph, 0.0)
            degrees = pseudo_graph.sum(axis=1, keepdims=True)
            degrees[degrees == 0.0] = 1.0
            # Smooth the embedding over the pseudo graph (one propagation step).
            embedding = 0.5 * embedding + 0.5 * (pseudo_graph / degrees) @ embedding
        self.embedding_ = embedding
        return self

    def fit_predict(self, graph: AttributedGraph) -> np.ndarray:
        """Cluster the refined embedding with k-means."""
        self.fit(graph)
        kmeans = KMeans(self.num_clusters, num_init=10, seed=self.seed)
        return kmeans.fit_predict(self.embedding_)
