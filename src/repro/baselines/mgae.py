"""MGAE: Marginalized Graph Auto-Encoder (Wang et al., 2017).

MGAE stacks single-layer marginalised denoising auto-encoders on the
graph-convolved features: each layer has a closed-form ridge solution that
is *marginalised* over random feature corruption.  Clustering is spectral
clustering on a similarity graph built from the final representation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.clustering.kmeans import KMeans
from repro.graph.graph import AttributedGraph
from repro.graph.laplacian import normalize_adjacency


class MGAE:
    """Marginalized Graph Auto-Encoder clustering baseline."""

    def __init__(
        self,
        num_clusters: int,
        num_layers: int = 3,
        corruption: float = 0.4,
        ridge: float = 1e-3,
        seed: int = 0,
    ) -> None:
        self.num_clusters = int(num_clusters)
        self.num_layers = int(num_layers)
        self.corruption = float(corruption)
        self.ridge = float(ridge)
        self.seed = int(seed)
        self.representation_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _marginalized_layer(self, hidden: np.ndarray) -> np.ndarray:
        """Closed-form marginalised denoising mapping W applied to ``hidden``.

        With corruption probability p, E[S] = (1-p)² X^T X off-diagonal and
        (1-p) X^T X on the diagonal; W solves E[S] W = E[Q].
        """
        keep = 1.0 - self.corruption
        scatter = hidden.T @ hidden
        q = scatter * keep * keep
        np.fill_diagonal(q, np.diag(scatter) * keep)
        p_matrix = scatter * keep
        regularized = q + self.ridge * np.eye(q.shape[0])
        weights = np.linalg.solve(regularized, p_matrix)
        return np.tanh(hidden @ weights)

    def fit(self, graph: AttributedGraph) -> "MGAE":
        adj_norm = normalize_adjacency(graph.adjacency, self_loops=True)
        hidden = graph.row_normalized_features()
        for _ in range(self.num_layers):
            hidden = adj_norm @ hidden
            hidden = self._marginalized_layer(hidden)
        self.representation_ = hidden
        return self

    def fit_predict(self, graph: AttributedGraph) -> np.ndarray:
        """Spectral-style clustering of the learned representation."""
        self.fit(graph)
        representation = self.representation_
        # Symmetric similarity graph + spectral embedding, as in the paper.
        similarity = representation @ representation.T
        similarity = (np.abs(similarity) + np.abs(similarity.T)) / 2.0
        degrees = similarity.sum(axis=1)
        inv_sqrt = np.zeros_like(degrees)
        nonzero = degrees > 0
        inv_sqrt[nonzero] = 1.0 / np.sqrt(degrees[nonzero])
        laplacian_norm = similarity * inv_sqrt[:, None] * inv_sqrt[None, :]
        eigenvalues, eigenvectors = np.linalg.eigh(laplacian_norm)
        spectral = eigenvectors[:, -self.num_clusters :]
        norms = np.linalg.norm(spectral, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        spectral = spectral / norms
        kmeans = KMeans(self.num_clusters, num_init=10, seed=self.seed)
        return kmeans.fit_predict(spectral)
