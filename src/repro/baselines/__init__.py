"""Non-GAE graph clustering baselines used in the Appendix D comparison (Table 17).

Each baseline is a deliberately compact but faithful re-implementation of
the method's core idea, exposing the common ``fit_predict(graph) ->
labels`` interface:

* :class:`TADW` — text-associated DeepWalk via matrix factorisation.
* :class:`MGAE` — marginalised (denoising) graph auto-encoder with spectral
  clustering on the learned representation.
* :class:`AGC` — adaptive graph convolution: high-order graph filtering of
  the attributes followed by spectral clustering.
* :class:`AGE` — adaptive graph encoder: Laplacian-smoothed features plus a
  similarity-based pseudo-supervised refinement.
"""

from repro.baselines.tadw import TADW
from repro.baselines.mgae import MGAE
from repro.baselines.agc import AGC
from repro.baselines.age import AGE
from repro.baselines.registry import (
    BASELINES,
    BASELINE_BUILDERS,
    build_baseline,
    available_baselines,
)

__all__ = [
    "BASELINES",
    "TADW",
    "MGAE",
    "AGC",
    "AGE",
    "BASELINE_BUILDERS",
    "build_baseline",
    "available_baselines",
]
