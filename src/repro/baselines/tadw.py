"""TADW: Text-Associated DeepWalk (Yang et al., 2015) — matrix factorisation baseline.

TADW factorises a random-walk proximity matrix ``M`` into ``W^T H X`` where
``X`` is a low-rank representation of the node attributes.  The embedding is
the concatenation of ``W`` and ``H X``; clustering is k-means on that
embedding.  This compact implementation uses alternating ridge-regularised
least squares on the dense proximity matrix, which is exact for the graph
sizes used in this repository.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.clustering.kmeans import KMeans
from repro.graph.graph import AttributedGraph


class TADW:
    """Text-Associated DeepWalk clustering baseline."""

    def __init__(
        self,
        num_clusters: int,
        embedding_dim: int = 32,
        text_dim: int = 64,
        num_iterations: int = 20,
        ridge: float = 0.2,
        seed: int = 0,
    ) -> None:
        self.num_clusters = int(num_clusters)
        self.embedding_dim = int(embedding_dim)
        self.text_dim = int(text_dim)
        self.num_iterations = int(num_iterations)
        self.ridge = float(ridge)
        self.seed = int(seed)
        self.embedding_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _proximity_matrix(self, adjacency: np.ndarray) -> np.ndarray:
        """(A_hat + A_hat²)/2 where A_hat is the row-normalised adjacency."""
        adjacency = np.asarray(adjacency, dtype=np.float64)
        degrees = adjacency.sum(axis=1, keepdims=True)
        degrees[degrees == 0.0] = 1.0
        a_hat = adjacency / degrees
        return (a_hat + a_hat @ a_hat) / 2.0

    def _reduced_text(self, features: np.ndarray) -> np.ndarray:
        """SVD-reduced attribute matrix ``X`` (text_dim x N)."""
        features = np.asarray(features, dtype=np.float64)
        rank = min(self.text_dim, min(features.shape) - 1)
        u, s, _ = np.linalg.svd(features, full_matrices=False)
        return (u[:, :rank] * s[:rank]).T

    def fit(self, graph: AttributedGraph) -> "TADW":
        rng = np.random.default_rng(self.seed)
        proximity = self._proximity_matrix(graph.adjacency)
        text = self._reduced_text(graph.row_normalized_features())
        k = self.embedding_dim // 2
        n = graph.num_nodes
        w = rng.normal(0.0, 0.1, size=(k, n))
        h = rng.normal(0.0, 0.1, size=(k, text.shape[0]))
        eye_k = np.eye(k) * self.ridge
        for _ in range(self.num_iterations):
            hx = h @ text
            # Solve for W: min ||M - W^T HX||² + ridge ||W||²
            gram = hx @ hx.T + eye_k
            w = np.linalg.solve(gram, hx @ proximity.T)
            # Solve for H: min ||M - W^T H X||² + ridge ||H||²
            gram_w = w @ w.T + eye_k
            target = w @ proximity @ text.T
            gram_x = text @ text.T + np.eye(text.shape[0]) * self.ridge
            h = np.linalg.solve(gram_w, target) @ np.linalg.inv(gram_x)
        self.embedding_ = np.concatenate([w.T, (h @ text).T], axis=1)
        return self

    def fit_predict(self, graph: AttributedGraph) -> np.ndarray:
        """Cluster the TADW embedding with k-means."""
        self.fit(graph)
        kmeans = KMeans(self.num_clusters, num_init=10, seed=self.seed)
        return kmeans.fit_predict(self.embedding_)
