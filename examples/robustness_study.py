"""Robustness study: how do DGAE and R-DGAE cope with corrupted graphs?

Reproduces the spirit of Figures 7-8: the same noise (random extra edges,
then dropped edges) is applied to the graph for both models, which also
share their pretraining weights, and the accuracies are compared level by
level.

Usage::

    python examples/robustness_study.py
"""

from __future__ import annotations

from repro.datasets import load_dataset
from repro.experiments import ExperimentConfig, edge_addition_study, edge_removal_study
from repro.experiments.tables import format_simple_table


def main() -> None:
    graph = load_dataset("cora_sim", seed=0)
    config = ExperimentConfig(pretrain_epochs=60, clustering_epochs=40, rethink_epochs=60)

    added = edge_addition_study("dgae", graph, num_edges_levels=(0, 300, 600), config=config)
    dropped = edge_removal_study("dgae", graph, num_edges_levels=(0, 300, 600), config=config)

    def flatten(rows):
        return [
            {
                "level": row["level"],
                "dgae_acc": row["base"]["acc"],
                "r_dgae_acc": row["rethink"]["acc"],
                "dgae_ari": row["base"]["ari"],
                "r_dgae_ari": row["rethink"]["ari"],
            }
            for row in rows
        ]

    print(
        format_simple_table(
            flatten(added),
            columns=["level", "dgae_acc", "r_dgae_acc", "dgae_ari", "r_dgae_ari"],
            title="Adding random (noisy) edges",
        )
    )
    print()
    print(
        format_simple_table(
            flatten(dropped),
            columns=["level", "dgae_acc", "r_dgae_acc", "dgae_ari", "r_dgae_ari"],
            title="Dropping existing edges",
        )
    )


if __name__ == "__main__":
    main()
