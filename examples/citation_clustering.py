"""Citation-network clustering: the paper's headline experiment in miniature.

Trains GMM-VGAE and R-GMM-VGAE on the Cora surrogate from shared
pretraining weights (the paper's fairness protocol), prints a Table-1-style
row, and reports the Feature-Randomness / Feature-Drift diagnostics of the
R- run.

Usage::

    python examples/citation_clustering.py [dataset]

where ``dataset`` is one of cora_sim (default), citeseer_sim, pubmed_sim.
"""

from __future__ import annotations

import sys

from repro.core import RethinkConfig, RethinkTrainer
from repro.datasets import citation_datasets, load_dataset
from repro.experiments import format_table, rethink_hyperparameters
from repro.metrics import evaluate_clustering
from repro.models import build_model


def main(dataset_name: str = "cora_sim") -> None:
    if dataset_name not in citation_datasets():
        raise SystemExit(f"choose one of {citation_datasets()}")
    graph = load_dataset(dataset_name, seed=0)
    model_name = "gmm_vgae"

    # Shared pretraining snapshot.
    pretrain = build_model(model_name, graph.num_features, graph.num_clusters, seed=0)
    pretrain.pretrain(graph, epochs=100)
    state = pretrain.state_dict()

    # Base model: joint clustering + reconstruction (Eq. 5).
    base = build_model(model_name, graph.num_features, graph.num_clusters, seed=0)
    base.load_state_dict(state)
    base.fit_clustering(graph, epochs=80)
    base_report = evaluate_clustering(graph.labels, base.predict_labels(graph))

    # R- model: Eq. 6 with the operators Xi and Upsilon, tracking FR/FD.
    hyper = rethink_hyperparameters(dataset_name, model_name)
    rethought = build_model(model_name, graph.num_features, graph.num_clusters, seed=0)
    rethought.load_state_dict(state)
    trainer = RethinkTrainer(
        rethought,
        RethinkConfig(
            alpha1=hyper["alpha1"],
            update_omega_every=hyper["update_omega_every"],
            update_graph_every=hyper["update_graph_every"],
            epochs=100,
            track_fr=True,
            track_fd=True,
            evaluate_every=20,
        ),
    )
    history = trainer.fit(graph, pretrained=True)

    rows = {
        "GMM-VGAE": {dataset_name: base_report.as_dict()},
        "R-GMM-VGAE": {dataset_name: history.final_report.as_dict()},
    }
    print(format_table(rows, [dataset_name], title=f"Clustering on {dataset_name}"))
    if history.fr_rethought:
        print("\nLambda_FR trace (R-GMM-VGAE):", [round(v, 3) for v in history.fr_rethought])
        print("Lambda_FD trace (R-GMM-VGAE):", [round(v, 3) for v in history.fd_rethought])


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "cora_sim")
