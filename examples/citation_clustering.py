"""Citation-network clustering: the paper's headline experiment in miniature.

Trains GMM-VGAE and R-GMM-VGAE on the Cora surrogate from shared
pretraining weights (the paper's fairness protocol), prints a Table-1-style
row, and reports the Feature-Randomness / Feature-Drift diagnostics of the
R- run — tracked by the ``fr_fd`` callback from the callback registry.

Usage::

    python examples/citation_clustering.py [dataset]

where ``dataset`` is one of cora_sim (default), citeseer_sim, pubmed_sim.
"""

from __future__ import annotations

import sys

from repro.api import Pipeline
from repro.datasets import citation_datasets, load_dataset
from repro.experiments import format_table
from repro.models import build_model


def main(dataset_name: str = "cora_sim") -> None:
    if dataset_name not in citation_datasets():
        raise SystemExit(f"choose one of {citation_datasets()}")
    model_name = "gmm_vgae"

    # Shared pretraining snapshot.
    graph = load_dataset(dataset_name, seed=0)
    pretrain = build_model(model_name, graph.num_features, graph.num_clusters, seed=0)
    pretrain.pretrain(graph, epochs=100)
    state = pretrain.state_dict()

    template = (
        Pipeline()
        .dataset(dataset_name, seed=0)
        .model(model_name)
        .seed(0)
        .pretrained_state(state)
        .training(pretrain_epochs=100, clustering_epochs=80, rethink_epochs=100)
    )

    # Base model: joint clustering + reconstruction (Eq. 5).
    base = template.base().run()

    # R- model: Eq. 6 with the operators Xi and Upsilon, tracking FR/FD
    # through the declarative callback spec.
    rethought = (
        template.rethink(evaluate_every=20)
        .callbacks({"name": "fr_fd", "track_fr": True, "track_fd": True})
        .run()
    )
    history = rethought.history

    rows = {
        "GMM-VGAE": {dataset_name: base.report.as_dict()},
        "R-GMM-VGAE": {dataset_name: rethought.report.as_dict()},
    }
    print(format_table(rows, [dataset_name], title=f"Clustering on {dataset_name}"))
    if history.fr_rethought:
        print("\nLambda_FR trace (R-GMM-VGAE):", [round(v, 3) for v in history.fr_rethought])
        print("Lambda_FD trace (R-GMM-VGAE):", [round(v, 3) for v in history.fd_rethought])


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "cora_sim")
