"""Quickstart: turn a GAE model into its R- variant with the Pipeline API.

Runs in under a minute on a laptop: loads the smallest benchmark dataset
(the Brazil air-traffic surrogate), trains a plain GAE, then trains R-GAE
from the same pretraining weights and compares ACC / NMI / ARI.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import Pipeline
from repro.datasets import dataset_summary
from repro.models import build_model


def main() -> None:
    dataset_name = "brazil_air_sim"
    print(f"Dataset summary: {dataset_summary(dataset_name)}")

    # ------------------------------------------------------------------
    # 1. Shared pretraining snapshot (the paper's fairness protocol:
    #    D and R-D start from the same self-supervised weights).
    # ------------------------------------------------------------------
    from repro.datasets import load_dataset

    graph = load_dataset(dataset_name, seed=0)
    pretrain = build_model("gae", graph.num_features, graph.num_clusters, seed=0)
    pretrain.pretrain(graph, epochs=80)
    state = pretrain.state_dict()

    # ------------------------------------------------------------------
    # 2. One pipeline template, two variants.  The base variant runs the
    #    original GAE (k-means on the frozen embeddings); the rethink
    #    variant wraps the same model with the sampling operator Xi and
    #    the graph-transform operator Upsilon.
    # ------------------------------------------------------------------
    template = (
        Pipeline()
        .dataset(dataset_name, seed=0)
        .model("gae")
        .seed(0)
        .pretrained_state(state)
        .training(pretrain_epochs=80, rethink_epochs=80)
    )

    base = template.base().run()
    print(f"GAE   (k-means on pretrained embeddings): {base.report}")

    rethought = (
        template.rethink(alpha1=0.3, update_omega_every=10, update_graph_every=5).run()
    )
    print(f"R-GAE (operators Xi and Upsilon):         {rethought.report}")
    history = rethought.history
    print(
        f"decidable-node coverage at the end: {history.omega_coverage[-1]:.2f} "
        f"(converged: {history.converged})"
    )

    # ------------------------------------------------------------------
    # 3. The same trial as declarative data: every pipeline is backed by
    #    a RunSpec that round-trips through JSON (see `repro-run`).
    # ------------------------------------------------------------------
    print("\nThis R- trial as a JSON run spec:")
    print(template.rethink(alpha1=0.3).spec().to_json())


if __name__ == "__main__":
    main()
