"""Quickstart: turn a GAE model into its R- variant and evaluate the gain.

Runs in under a minute on a laptop: loads the smallest benchmark dataset
(the Brazil air-traffic surrogate), trains a plain GAE, then trains R-GAE
from the same pretraining weights and compares ACC / NMI / ARI.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import RethinkConfig, RethinkTrainer
from repro.datasets import dataset_summary, load_dataset
from repro.metrics import evaluate_clustering
from repro.models import build_model


def main() -> None:
    dataset_name = "brazil_air_sim"
    print(f"Dataset summary: {dataset_summary(dataset_name)}")
    graph = load_dataset(dataset_name, seed=0)

    # ------------------------------------------------------------------
    # 1. Pretrain a plain GAE (self-supervised adjacency reconstruction).
    # ------------------------------------------------------------------
    model = build_model("gae", graph.num_features, graph.num_clusters, seed=0)
    model.pretrain(graph, epochs=80)
    pretrained_state = model.state_dict()
    base_report = evaluate_clustering(graph.labels, model.predict_labels(graph))
    print(f"GAE   (k-means on pretrained embeddings): {base_report}")

    # ------------------------------------------------------------------
    # 2. Train the R- variant from the same pretraining weights.
    #    The sampling operator Xi selects reliable nodes, the operator
    #    Upsilon rewrites the reconstruction target into a
    #    clustering-oriented graph.
    # ------------------------------------------------------------------
    rethought = build_model("gae", graph.num_features, graph.num_clusters, seed=0)
    rethought.load_state_dict(pretrained_state)
    trainer = RethinkTrainer(
        rethought,
        RethinkConfig(alpha1=0.3, update_omega_every=10, update_graph_every=5, epochs=80),
    )
    history = trainer.fit(graph, pretrained=True)
    print(f"R-GAE (operators Xi and Upsilon):         {history.final_report}")
    print(
        f"decidable-node coverage at the end: {history.omega_coverage[-1]:.2f} "
        f"(converged: {history.converged})"
    )


if __name__ == "__main__":
    main()
