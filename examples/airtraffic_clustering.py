"""Air-traffic network clustering (attribute-free graphs).

The air-traffic networks of the paper have no node attributes: the feature
matrix is the one-hot encoding of node degrees.  This example runs the
(DGAE, R-DGAE) pair on all three air-traffic surrogates through the
Pipeline facade and prints a Table-3-style comparison.

Usage::

    python examples/airtraffic_clustering.py
"""

from __future__ import annotations

from repro.api import Pipeline
from repro.datasets import air_traffic_datasets, load_dataset
from repro.experiments import format_table
from repro.models import build_model


def run_pair(dataset_name: str) -> dict:
    """Train DGAE and R-DGAE on one air-traffic dataset with shared pretraining."""
    graph = load_dataset(dataset_name, seed=0)
    pretrain = build_model("dgae", graph.num_features, graph.num_clusters, seed=0)
    pretrain.pretrain(graph, epochs=80)
    state = pretrain.state_dict()

    template = (
        Pipeline()
        .dataset(dataset_name, seed=0)
        .model("dgae")
        .seed(0)
        .pretrained_state(state)
        .training(pretrain_epochs=80, clustering_epochs=60, rethink_epochs=80)
    )
    base = template.base().run()
    rethought = template.rethink().run()
    return {"base": base.report.as_dict(), "rethink": rethought.report.as_dict()}


def main() -> None:
    rows = {"DGAE": {}, "R-DGAE": {}}
    for dataset_name in air_traffic_datasets():
        print(f"running {dataset_name} ...")
        outcome = run_pair(dataset_name)
        rows["DGAE"][dataset_name] = outcome["base"]
        rows["R-DGAE"][dataset_name] = outcome["rethink"]
    print()
    print(format_table(rows, air_traffic_datasets(), title="DGAE vs R-DGAE on air-traffic surrogates"))


if __name__ == "__main__":
    main()
